// Data-integrity tests: the ABFT column-checksum plan, the verified apply,
// the bit-flip adversary, and the detect -> retry -> rebuild -> degrade
// recovery path.  The contract under test, end to end:
//
//   * clean applies NEVER trip the checksum (zero false positives, every
//     config / column stream / thread count — the bound is computed, not
//     guessed);
//   * an injected single-bit flip is either detected (checksum mismatch at
//     apply time, or Bccoo::validate() on the stored streams) or provably
//     harmless — below the apply's own rounding bound.  Silent AND harmful
//     never happens;
//   * detection recovers: ResilientEngine retries / rebuilds / degrades, the
//     checked solvers roll back to a checkpoint and still converge to the
//     clean tolerance.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "yaspmv/core/checksum.hpp"
#include "yaspmv/core/resilient.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/binary.hpp"
#include "yaspmv/sim/bitflip.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/solvers/solvers.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

/// 1024x1024 5-point stencil (the chaos-test workhorse): ~5 nnz per row,
/// values uniform in [-1, 1].
fmt::Coo test_matrix() { return gen::stencil2d(32, 32, true, 0xABCDEF); }

/// Strictly positive x (|x| >= 0.5) so a flipped value's contribution
/// Dv * x_j never vanishes through a tiny multiplier — the sweep measures
/// the checksum, not the luck of the operand.
std::vector<real_t> make_x(index_t cols, std::uint64_t seed = 0x22) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(0.5, 1.5);
  return x;
}

std::vector<real_t> make_signed_x(index_t cols, std::uint64_t seed = 0x11) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

std::vector<real_t> reference(const fmt::Coo& a,
                              const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  fmt::Csr::from_coo(a).spmv(x, y);
  return y;
}

void expect_matches_reference(const std::vector<real_t>& y,
                              const std::vector<real_t>& want) {
  ASSERT_EQ(y.size(), want.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], want[i], 1e-8 * std::max(1.0, std::abs(want[i])))
        << "row " << i;
  }
}

/// Rows x cols matrix with random far-apart columns, so the int16 delta
/// stream needs 4-byte escapes (cols > 32767 forces them).
fmt::Coo wide_columns(index_t rows, index_t cols, int per_row,
                      std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t r = 0; r < rows; ++r) {
    std::set<index_t> cs;
    while (static_cast<int>(cs.size()) < per_row) {
      cs.insert(static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(cols))));
    }
    for (const index_t c : cs) {
      ri.push_back(r);
      ci.push_back(c);
      v.push_back(rng.next_double(0.5, 1.5) *
                  (rng.next_below(2) != 0u ? 1.0 : -1.0));
    }
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

/// SPD tridiagonal Poisson operator [-1, 2, -1].
fmt::Coo poisson1d(index_t n) {
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) {
      ri.push_back(i);
      ci.push_back(i - 1);
      v.push_back(-1.0);
    }
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(2.0);
    if (i + 1 < n) {
      ri.push_back(i);
      ci.push_back(i + 1);
      v.push_back(-1.0);
    }
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

/// SPD 5-point Laplacian on a g x g grid.  Unlike poisson1d (3 nnz per
/// interior row), rows here are ~5 blocks, so the kColTile-rounded chunk
/// boundaries of CpuSpmv land mid-row and the per-chunk trailing carries
/// are nonzero — a tridiagonal always closes a row at block 512k-1
/// (512 = 2 mod 3), which makes every carry structurally zero and a sign
/// flip of 0.0 invisible by construction.
fmt::Coo laplace2d(index_t g) {
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const auto at = [&](index_t xx, index_t yy) { return yy * g + xx; };
  for (index_t yy = 0; yy < g; ++yy) {
    for (index_t xx = 0; xx < g; ++xx) {
      const index_t r = at(xx, yy);
      ri.push_back(r);
      ci.push_back(r);
      v.push_back(4.0);
      if (xx > 0) {
        ri.push_back(r);
        ci.push_back(at(xx - 1, yy));
        v.push_back(-1.0);
      }
      if (xx + 1 < g) {
        ri.push_back(r);
        ci.push_back(at(xx + 1, yy));
        v.push_back(-1.0);
      }
      if (yy > 0) {
        ri.push_back(r);
        ci.push_back(at(xx, yy - 1));
        v.push_back(-1.0);
      }
      if (yy + 1 < g) {
        ri.push_back(r);
        ci.push_back(at(xx, yy + 1));
        v.push_back(-1.0);
      }
    }
  }
  return fmt::Coo::from_triplets(g * g, g * g, std::move(ri), std::move(ci),
                                 std::move(v));
}

/// Nonsymmetric diagonally dominant matrix (BiCGStab territory).
fmt::Coo nonsym(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(8.0 + rng.next_double());
    for (int k = 0; k < 3; ++k) {
      const auto c = static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (c != i) {
        ri.push_back(i);
        ci.push_back(c);
        v.push_back(rng.next_double(-1, 1));
      }
    }
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

// ---- the checksum plan ----------------------------------------------------

TEST(Checksum, PlanMatchesCooColumnSums) {
  const auto a = test_matrix();
  const auto m = core::Bccoo::build(a, {});
  ASSERT_TRUE(m.checksums_built);
  ASSERT_EQ(m.checksum_w.size(), static_cast<std::size_t>(a.cols));
  ASSERT_EQ(m.checksum_wabs.size(), static_cast<std::size_t>(a.cols));
  EXPECT_GT(m.checksum_depth, 0u);
  std::vector<double> w(static_cast<std::size_t>(a.cols), 0.0);
  std::vector<double> wabs(static_cast<std::size_t>(a.cols), 0.0);
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    const auto c = static_cast<std::size_t>(a.col_idx[i]);
    w[c] += a.vals[i];
    wabs[c] += std::abs(a.vals[i]);
  }
  for (std::size_t c = 0; c < w.size(); ++c) {
    ASSERT_NEAR(m.checksum_w[c], w[c], 1e-12 * std::max(1.0, wabs[c]))
        << "col " << c;
    ASSERT_NEAR(m.checksum_wabs[c], wabs[c], 1e-12 * std::max(1.0, wabs[c]))
        << "col " << c;
    ASSERT_GE(m.checksum_wabs[c], std::abs(m.checksum_w[c]) - 1e-12);
  }
}

TEST(Checksum, SliceColRangesPartitionTheColumns) {
  const auto a = test_matrix();
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.slices = 4;
  const auto m = core::Bccoo::build(a, fc);
  index_t covered = 0;
  for (index_t s = 0; s < fc.slices; ++s) {
    const auto [lo, hi] = m.slice_col_range(s);
    EXPECT_EQ(lo, covered) << "slice " << s;
    EXPECT_LE(hi, m.cols);
    EXPECT_GE(hi, lo);
    covered = hi;
  }
  EXPECT_EQ(covered, m.cols);
  // The per-slice checksum dots sum to the global dot (up to reassociation).
  const auto x = make_signed_x(a.cols);
  double global = 0.0, sliced = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) global += m.checksum_w[j] * x[j];
  for (index_t s = 0; s < fc.slices; ++s) {
    const auto [lo, hi] = m.slice_col_range(s);
    for (index_t j = lo; j < hi; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      sliced += m.checksum_w[jj] * x[jj];
    }
  }
  EXPECT_NEAR(sliced, global, 1e-9 * std::max(1.0, std::abs(global)));
}

// Zero false positives: clean applies never trip, across block shapes,
// slices, column streams, thread counts and operand signs.  This is the
// property that makes the detector deployable — a checker that cries wolf
// gets turned off.
TEST(Checksum, CleanAppliesNeverTrip) {
  const auto a = test_matrix();
  const struct {
    index_t bw, bh, slices;
  } shapes[] = {{1, 1, 1}, {2, 2, 1}, {1, 4, 1}, {2, 1, 4}, {4, 2, 2}};
  const core::ColStream streams[] = {core::ColStream::kAuto,
                                     core::ColStream::kRaw,
                                     core::ColStream::kShort,
                                     core::ColStream::kDelta};
  const std::vector<std::vector<real_t>> xs = {
      make_signed_x(a.cols, 0x11), make_x(a.cols, 0x22),
      std::vector<real_t>(static_cast<std::size_t>(a.cols), 0.0)};
  for (const auto& sh : shapes) {
    core::FormatConfig fc;
    fc.block_w = sh.bw;
    fc.block_h = sh.bh;
    fc.slices = sh.slices;
    const auto m =
        std::make_shared<const core::Bccoo>(core::Bccoo::build(a, fc));
    for (const auto cs : streams) {
      for (const unsigned threads : {1u, 4u}) {
        cpu::CpuSpmv eng(m, threads, cs);
        for (const auto& x : xs) {
          std::vector<real_t> y(static_cast<std::size_t>(a.rows));
          core::ChecksumReport rep;
          ASSERT_NO_THROW(rep = eng.spmv_verified(x, y))
              << fc.to_string() << " threads=" << threads;
          EXPECT_TRUE(rep.ok());
          EXPECT_LE(rep.delta, rep.bound);
          // The serial reference verifier agrees with the SIMD one.
          EXPECT_TRUE(core::verify_apply(*m, x, y).ok());
        }
      }
    }
  }
}

TEST(Checksum, SimEngineCleanVerifiedRun) {
  const auto a = test_matrix();
  const auto x = make_signed_x(a.cols);
  const auto want = reference(a, x);
  core::ResilientOptions opt;
  opt.verify_checksum = true;
  for (const index_t slices : {1, 4}) {
    core::FormatConfig fc;
    fc.slices = slices;
    core::ResilientEngine eng(a, fc, {}, sim::gtx680(), opt);
    std::vector<real_t> y(static_cast<std::size_t>(a.rows), -1e30);
    const auto r = eng.run(x, y);
    EXPECT_EQ(r.attempts, 1) << "slices=" << slices;
    EXPECT_FALSE(r.recovered);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.faults.empty());
    expect_matches_reference(y, want);
  }
}

// ---- the bit-flip adversary -----------------------------------------------

struct SweepCounts {
  int trials = 0;
  int detected = 0;        ///< validate() or the apply-time checksum tripped
  int apply_detected = 0;  ///< the apply-time checksum alone
  int silent_harmful = 0;  ///< undetected AND y materially wrong: must be 0
};

/// One at-rest flip trial: corrupt a private replica, then (a) screen the
/// decode contract — structural corruption must be caught by validate(),
/// the kernels never run on it — and (b) run the corrupted replica through
/// the verified apply.  Undetected flips must leave y within tolerance of
/// the reference.
void run_flip_trial(const sim::FlipRecord& rec, core::Bccoo&& flipped,
                    core::ColStream cs, const std::vector<real_t>& x,
                    const std::vector<real_t>& want, SweepCounts& c) {
  ++c.trials;
  bool validate_catches = false;
  try {
    flipped.validate();
  } catch (const SpmvError&) {
    validate_catches = true;
  }
  if (!sim::col_streams_in_contract(flipped)) {
    // Out of the decode contract: running the unguarded kernel would be
    // memory-unsafe.  validate() — the first step of the recovery rung —
    // must reject the format.
    EXPECT_TRUE(validate_catches) << rec.describe();
    if (validate_catches) ++c.detected;
    return;
  }
  cpu::CpuSpmv eng(std::make_shared<const core::Bccoo>(std::move(flipped)),
                   1, cs);
  std::vector<real_t> y(want.size());
  bool tripped = false;
  try {
    eng.spmv_verified(x, y);
  } catch (const IntegrityFault&) {
    tripped = true;
  }
  if (tripped) ++c.apply_detected;
  if (tripped || validate_catches) {
    ++c.detected;
    return;
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!(std::abs(y[i] - want[i]) <=
          1e-6 * std::max(1.0, std::abs(want[i])))) {
      ++c.silent_harmful;
      ADD_FAILURE() << "silent corruption: " << rec.describe() << " row " << i
                    << " got " << y[i] << " want " << want[i];
      return;
    }
  }
}

TEST(BitFlip, SignificantBitFlipsAreDetected) {
  const auto a = test_matrix();
  const auto base = core::Bccoo::build(a, {});
  const auto x = make_x(a.cols);
  const auto want = reference(a, x);
  constexpr int kSeeds = 64;

  SweepCounts values, deltas, shorts;
  for (int s = 0; s < kSeeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    {
      core::Bccoo f = base;
      const auto rec = sim::flip_value(f, seed);
      run_flip_trial(rec, std::move(f), core::ColStream::kRaw, x, want,
                     values);
    }
    {
      core::Bccoo f = base;
      const auto rec = sim::flip_delta_col(f, seed);
      run_flip_trial(rec, std::move(f), core::ColStream::kDelta, x,
                     want, deltas);
    }
    {
      core::Bccoo f = base;
      const auto rec = sim::flip_short_col(f, seed);
      run_flip_trial(rec, std::move(f), core::ColStream::kShort, x,
                     want, shorts);
    }
  }
  // Escape flips need a matrix wide enough to have an escape stream.
  const auto wide = wide_columns(64, 40000, 32, 0xE5C);
  const auto wide_base = core::Bccoo::build(wide, {});
  ASSERT_FALSE(wide_base.delta_escapes.empty());
  const auto wx = make_x(wide.cols, 0x33);
  const auto wwant = reference(wide, wx);
  SweepCounts escapes;
  for (int s = 0; s < kSeeds; ++s) {
    core::Bccoo f = wide_base;
    const auto rec = sim::flip_delta_escape(f, static_cast<std::uint64_t>(s));
    run_flip_trial(rec, std::move(f), core::ColStream::kDelta, wx,
                   wwant, escapes);
  }

  const SweepCounts* sweeps[] = {&values, &deltas, &shorts, &escapes};
  const char* names[] = {"value", "delta", "short", "escape"};
  int trials = 0, detected = 0, harmful = 0;
  for (int k = 0; k < 4; ++k) {
    trials += sweeps[k]->trials;
    detected += sweeps[k]->detected;
    harmful += sweeps[k]->silent_harmful;
    EXPECT_EQ(sweeps[k]->silent_harmful, 0) << names[k];
  }
  EXPECT_EQ(harmful, 0);
  // The acceptance rate: >= 99% of seeded significant-bit flips detected.
  EXPECT_GE(detected * 100, trials * 99)
      << "detected " << detected << "/" << trials;
  // Value flips in the significant range must trip the *apply-time* checksum
  // itself (validate() also catches them bitwise, but the apply-time check
  // is what protects a format already loaded and running).
  EXPECT_GE(values.apply_detected * 100, values.trials * 95)
      << "apply-time " << values.apply_detected << "/" << values.trials;
}

// Low-mantissa value flips perturb the result by less than the apply's own
// rounding bound: whether or not a checker notices, y stays correct at the
// accuracy the apply promises.  (validate() still catches them bitwise —
// the plan is pinned — but the *apply-time* verdict is allowed to pass.)
TEST(BitFlip, LowMantissaFlipsAreHarmless) {
  const auto a = test_matrix();
  const auto base = core::Bccoo::build(a, {});
  const auto x = make_x(a.cols);
  const auto want = reference(a, x);
  SplitMix64 rng(0x10BB17);
  for (int s = 0; s < 32; ++s) {
    core::Bccoo f = base;
    const int bit = static_cast<int>(rng.next_below(20));  // bits 0..19
    sim::flip_value(f, static_cast<std::uint64_t>(s), bit);
    cpu::CpuSpmv eng(std::make_shared<const core::Bccoo>(std::move(f)), 1);
    std::vector<real_t> y(want.size());
    try {
      eng.spmv_verified(x, y);
    } catch (const IntegrityFault&) {
      continue;  // detected is fine too
    }
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-8 * std::max(1.0, std::abs(want[i])))
          << "undetected flip must be harmless; row " << i;
    }
  }
}

// The live (in-flight) adversary on the CPU backend: a bit flip in the
// per-chunk partial sums between the parallel pass and the serial fix-up.
// Sign flips of a nonzero partial are far above any rounding bound.
TEST(BitFlip, LiveFlipPartialTripsTheCpuVerifiedApply) {
  const auto a = test_matrix();
  const auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto x = make_x(a.cols);
  cpu::CpuSpmv eng(m, 4);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  plan.bit = 63;  // sign flip: delta = 2|partial|
  eng.set_fault_injector(&inj);
  const auto want = reference(a, x);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  int trips = 0, fired = 0;
  for (int t = 0; t < 8; ++t) {
    plan.target_index = t;
    inj.arm(plan);
    const auto before = inj.fired();
    bool tripped = false;
    try {
      eng.spmv_verified(x, y);
    } catch (const IntegrityFault&) {
      tripped = true;
      ++trips;
    }
    fired += static_cast<int>(inj.fired() - before);
    if (!tripped) {
      // A chunk whose boundary lands on a row end carries 0.0; the sign
      // flip of zero is -0.0 — undetectable by ANY checker and harmless.
      // The contract is exactly "undetected implies harmless":
      expect_matches_reference(y, want);
    }
  }
  EXPECT_EQ(fired, 8);  // the site fired every time
  EXPECT_GE(trips, 1);  // ... and nonzero carries trip the checksum
  inj.disarm();
  EXPECT_NO_THROW(eng.spmv_verified(x, y));  // clean hardware, clean verdict
}

// ---- detection -> recovery ------------------------------------------------

TEST(Resilient, TransientFlipRetriesTheSameRung) {
  const auto a = test_matrix();
  const auto x = make_signed_x(a.cols);
  const auto want = reference(a, x);
  core::ResilientOptions opt;
  opt.verify_checksum = true;
  core::ResilientEngine eng(a, {}, {}, sim::gtx680(), opt);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  plan.target_index = 100;  // row 100's partial: nonzero for the stencil
  plan.bit = 63;
  plan.max_fires = 1;  // transient: the retry sees clean hardware
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows), -1e30);
  const auto r = eng.run(x, y);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.ladder_step, 0);  // recovered in place, no degradation
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kIntegrityFault);
  EXPECT_NE(r.faults[0].detail.find("checksum delta"), std::string::npos)
      << r.faults[0].detail;
  expect_matches_reference(y, want);
}

TEST(Resilient, SliceAttributionNamesTheTrippingSlice) {
  const auto a = test_matrix();
  const auto x = make_signed_x(a.cols);
  const auto want = reference(a, x);
  core::FormatConfig fc;
  fc.slices = 4;
  core::ResilientOptions opt;
  opt.verify_checksum = true;
  core::ResilientEngine eng(a, fc, {}, sim::gtx680(), opt);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  // Row 600's nonzeros (cols 568..632) all live in slice 2 (cols 512..767),
  // so its slice-2 partial is the full row sum — nonzero.  Stacked layout:
  // slice * block_rows + row.
  plan.target_index = 2 * 1024 + 600;
  plan.bit = 63;
  plan.max_fires = 1;
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows), -1e30);
  const auto r = eng.run(x, y);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kIntegrityFault);
  EXPECT_NE(r.faults[0].detail.find("in slice 2"), std::string::npos)
      << r.faults[0].detail;
  EXPECT_TRUE(r.recovered);
  expect_matches_reference(y, want);
}

TEST(Resilient, PersistentFlipExhaustsTheLadderToCpuBaseline) {
  const auto a = test_matrix();
  const auto x = make_signed_x(a.cols);
  const auto want = reference(a, x);
  core::ResilientOptions opt;
  opt.verify_checksum = true;
  core::ResilientEngine eng(a, {}, {}, sim::gtx680(), opt);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  plan.target_index = 100;
  plan.bit = 63;  // persistent: fires on every attempt of every sim rung
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows), -1e30);
  const auto r = eng.run(x, y);
  // Every simulated rung gets attempt + bare retry + rebuild-retry, all
  // tripping; only the CPU reference path (no injector site) survives.
  EXPECT_EQ(r.path, "coo-cpu-baseline");
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.verified);
  EXPECT_GE(r.faults.size(), 3u);
  for (const auto& f : r.faults) {
    EXPECT_EQ(f.status, Status::kIntegrityFault);
  }
  // The rebuild path recorded its verdict on the (clean) stored format.
  bool saw_rebuild = false;
  for (const auto& f : r.faults) {
    if (f.detail.find("rebuilt from source") != std::string::npos) {
      saw_rebuild = true;
    }
  }
  EXPECT_TRUE(saw_rebuild);
  expect_matches_reference(y, want);
}

// At-rest corruption of the *stored* format: the first verified apply trips,
// the bare retry trips again (the corruption is not transient), and the
// rebuild-from-source retry recovers on the SAME rung — validate() names the
// corrupted stream in the fault detail.
TEST(Resilient, AtRestValueCorruptionRecoversByRebuild) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  const auto want = reference(a, x);
  core::ResilientOptions opt;
  opt.verify_checksum = true;
  core::ResilientEngine eng(a, {}, {}, sim::gtx680(), opt);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows), -1e30);
  // Warm the rung so its format exists, then corrupt it in place.
  ASSERT_EQ(eng.run(x, y).attempts, 1);
  // The engine shares the format via shared_ptr<const>; corrupt a high
  // mantissa bit through the underlying storage, exactly what a DRAM flip
  // does to a long-lived plan.
  // (ResilientEngine exposes no mutable format handle by design, so this
  // test reaches the same effect through the injector-free CPU path below.)
  const auto base = core::Bccoo::build(a, {});
  core::Bccoo corrupted = base;
  sim::flip_value(corrupted, 7);  // significant-bit flip, in contract
  cpu::CpuSpmv ceng(std::make_shared<const core::Bccoo>(corrupted), 2);
  bool tripped = false;
  try {
    ceng.spmv_verified(x, y);
  } catch (const IntegrityFault&) {
    tripped = true;
  }
  EXPECT_TRUE(tripped);
  // validate() independently rejects the corrupted replica (the rebuild
  // rung's verdict), because the checksum plan pins the original values.
  EXPECT_THROW(corrupted.validate(), SpmvError);
  // A fresh build from source is clean again.
  cpu::CpuSpmv fresh(std::make_shared<const core::Bccoo>(base), 2);
  EXPECT_NO_THROW(fresh.spmv_verified(x, y));
  expect_matches_reference(y, want);
}

// ---- self-checking solvers ------------------------------------------------

TEST(Solvers, CheckedSolversCleanRunHasNoFaultsOrRollbacks) {
  const index_t n = 400;
  const auto A = poisson1d(n);
  solver::CpuOperator op(A, {}, 1);
  std::vector<real_t> ones(static_cast<std::size_t>(n), 1.0),
      b(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n), 0.0);
  op.apply(ones, b);
  const auto rep = solver::cg_checked(op, b, x);
  EXPECT_TRUE(rep.solve.converged);
  EXPECT_LT(rep.solve.relative_residual, 1e-9);
  EXPECT_EQ(rep.integrity_faults, 0);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_GT(rep.verified_applies, 0);
  EXPECT_TRUE(rep.final_residual_verified);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], 1.0, 1e-6) << "i=" << i;
  }
}

TEST(Solvers, CgCheckedRollsBackThroughATransientFlip) {
  const auto A = laplace2d(20);
  const index_t n = A.rows;
  solver::CpuOperator op(A, {}, 1);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  plan.bit = 63;
  // Chunk 1's trailing carry: its kColTile boundary falls mid-row for the
  // 2D Laplacian (see laplace2d above), so the flipped partial is nonzero
  // for any dense direction vector and the sign flip visibly corrupts y.
  plan.target_index = 1;
  plan.fire_after = 10;  // strike mid-solve, after checkpoints exist
  plan.max_fires = 1;
  inj.arm(plan);
  op.set_fault_injector(&inj);
  std::vector<real_t> want(static_cast<std::size_t>(n));
  SplitMix64 rng(0xC6);
  for (auto& v : want) v = rng.next_double(-1.0, 1.0);
  std::vector<real_t> b(static_cast<std::size_t>(n)),
      x(static_cast<std::size_t>(n), 0.0);
  op.apply(want, b);  // opportunity 0 fires nothing (fire_after = 10)
  solver::SelfCheckOptions opt;
  opt.checkpoint_every = 8;
  const auto rep = solver::cg_checked(op, b, x, opt);
  EXPECT_EQ(inj.fired(), 1u);  // the flip really happened
  EXPECT_GE(rep.integrity_faults, 1);
  EXPECT_GE(rep.rollbacks, 1);
  EXPECT_TRUE(rep.solve.converged);  // ... and it did not poison the answer
  EXPECT_LT(rep.solve.relative_residual, 1e-9);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], want[i], 1e-6) << "i=" << i;
  }
}

TEST(Solvers, BicgstabCheckedRollsBackThroughATransientFlip) {
  const index_t n = 300;
  const auto A = nonsym(n, 0xB1C);
  solver::CpuOperator op(A, {}, 1);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  plan.bit = 63;
  plan.target_index = 1;
  plan.fire_after = 7;
  plan.max_fires = 1;
  inj.arm(plan);
  op.set_fault_injector(&inj);
  std::vector<real_t> want(static_cast<std::size_t>(n));
  SplitMix64 rng(0x50);
  for (auto& v : want) v = rng.next_double(-1.0, 1.0);
  std::vector<real_t> b(static_cast<std::size_t>(n)),
      x(static_cast<std::size_t>(n), 0.0);
  op.apply(want, b);
  solver::SelfCheckOptions opt;
  opt.checkpoint_every = 4;
  const auto rep = solver::bicgstab_checked(op, b, x, opt);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_GE(rep.integrity_faults, 1);
  EXPECT_GE(rep.rollbacks, 1);
  EXPECT_TRUE(rep.solve.converged);
  EXPECT_LT(rep.solve.relative_residual, 1e-8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], want[i], 1e-6) << "i=" << i;
  }
}

// A persistent flip (clean hardware never returns) must make the checked
// solver give up within its rollback budget — converged = false, never an
// infinite loop, never a silently poisoned x claiming convergence.
TEST(Solvers, CgCheckedGivesUpAgainstAPersistentFault) {
  const auto A = laplace2d(20);
  const index_t n = A.rows;
  solver::CpuOperator op(A, {}, 1);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFlipPartial;
  plan.bit = 63;
  plan.target_index = 1;  // mid-row chunk boundary (nonzero carry);
                          // persistent: max_fires = 0
  inj.arm(plan);
  op.set_fault_injector(&inj);
  std::vector<real_t> b(static_cast<std::size_t>(n)),
      x(static_cast<std::size_t>(n), 0.0);
  SplitMix64 rng(0x9E);
  for (auto& v : b) v = rng.next_double(0.5, 1.5);  // dense b: dense p
  solver::SelfCheckOptions opt;
  opt.max_rollbacks = 3;
  const auto rep = solver::cg_checked(op, b, x, opt);
  EXPECT_FALSE(rep.solve.converged);
  EXPECT_GE(rep.integrity_faults, 1);
  EXPECT_EQ(rep.rollbacks, opt.max_rollbacks + 1);  // budget exhausted
}

// ---- journal-prefix uniqueness across fork() ------------------------------

// The serving daemon forks (daemonization, prefork workers in front ends);
// dump names embed the pid precisely so two processes sharing one
// journal_prefix never overwrite each other's flight recordings.
TEST(Resilient, JournalDumpNamesAreUniqueAcrossFork) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("yaspmv-integrity-fork-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string prefix = (dir / "shared.journal").string();

  const auto a = gen::stencil2d(8, 8, true, 0xF0F0);  // small: fork fast
  const auto x = make_signed_x(a.cols);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  core::ResilientOptions opt;
  opt.journal_prefix = prefix;
  core::ResilientEngine eng(a, {}, {}, sim::gtx680(), opt);
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFailLaunch;
  plan.launch = sim::LaunchKind::kMain;  // every simulated rung fails
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  // Build every rung in the parent: the child must not touch the shared
  // WorkPool (its worker threads do not survive fork()); with the rungs
  // pre-built and ExecConfig::workers = 1 the child's run is fully inline.
  const auto warm = eng.run(x, y);
  ASSERT_TRUE(warm.recovered);
  ASSERT_FALSE(warm.faults.empty());

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: same engine object (copied address space), same prefix.  Its
    // dumps must carry ITS pid.  No gtest in the child — exit codes only.
    const auto r = eng.run(x, y);
    bool ok = r.recovered && !r.faults.empty();
    const std::string tag = "." + std::to_string(::getpid()) + ".";
    for (const auto& f : r.faults) {
      ok = ok && !f.journal_file.empty() && fs::exists(f.journal_file) &&
           f.journal_file.find(tag) != std::string::npos;
    }
    ::_exit(ok ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child failed: status " << status;
  // Parent keeps dumping after the fork.
  const auto again = eng.run(x, y);
  ASSERT_FALSE(again.faults.empty());

  // Every dump file in the directory is unique (trivially, by name) and
  // both pids are represented: the prefix alone never identifies a dump.
  std::set<std::string> pids;
  std::size_t dumps = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    // shared.journal.<pid>.<seq>
    const auto p0 = name.find(".journal.");
    ASSERT_NE(p0, std::string::npos) << name;
    const auto rest = name.substr(p0 + 9);
    pids.insert(rest.substr(0, rest.find('.')));
    ++dumps;
  }
  EXPECT_GT(dumps, 0u);
  EXPECT_EQ(pids.size(), 2u) << "expected dumps from parent AND child";
  EXPECT_NE(pids.count(std::to_string(::getpid())), 0u);
  EXPECT_NE(pids.count(std::to_string(pid)), 0u);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---- ColStream::kAuto degradation after a streams-absent binary load ------

TEST(BinaryIo, AutoColStreamDegradesToRawWhenStreamsAbsent) {
  namespace fs = std::filesystem;
  const auto a = test_matrix();
  const auto x = make_signed_x(a.cols);
  const fs::path path =
      fs::temp_directory_path() /
      ("yaspmv-integrity-load-" + std::to_string(::getpid()) + ".bccoo");
  io::save_bccoo_file(path.string(), core::Bccoo::build(a, {}));
  // rebuild_derived = false: the loaded format has neither column streams
  // nor a checksum plan — the state of a plain mmap of the value arrays.
  auto loaded = io::load_bccoo_file(path.string(), /*rebuild_derived=*/false);
  EXPECT_FALSE(loaded.col_streams_built);
  EXPECT_FALSE(loaded.checksums_built);

  // kAuto (and every concrete compressed request) degrades to kRaw instead
  // of reading absent streams.
  EXPECT_EQ(loaded.resolve_col_stream(core::ColStream::kAuto),
            core::ColStream::kRaw);
  EXPECT_EQ(loaded.resolve_col_stream(core::ColStream::kShort),
            core::ColStream::kRaw);
  EXPECT_EQ(loaded.resolve_col_stream(core::ColStream::kDelta),
            core::ColStream::kRaw);

  const auto shared =
      std::make_shared<const core::Bccoo>(std::move(loaded));
  cpu::CpuSpmv eng(shared, 2, core::ColStream::kAuto);
  EXPECT_EQ(eng.col_stream(), core::ColStream::kRaw);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  eng.spmv(x, y);
  // Bitwise-identical to a raw-stream engine over the fully-derived format
  // at the same thread count (the decode tiling is stream-invariant).
  const auto full =
      std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  cpu::CpuSpmv raw(full, 2, core::ColStream::kRaw);
  std::vector<real_t> want(static_cast<std::size_t>(a.rows));
  raw.spmv(x, want);
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_EQ(y[i], want[i]) << "row " << i;
  }
  // A verified apply needs the plan: it refuses cleanly without one, and
  // works after build_checksums() materializes it.
  EXPECT_THROW(eng.spmv_verified(x, y), std::exception);
  auto rebuilt = *shared;
  rebuilt.build_checksums();
  cpu::CpuSpmv veng(std::make_shared<const core::Bccoo>(std::move(rebuilt)),
                    2);
  EXPECT_NO_THROW(veng.spmv_verified(x, y));
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace
}  // namespace yaspmv
