// Matrix Market reader/writer tests.
#include "yaspmv/io/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "yaspmv/gen/suite.hpp"

namespace yaspmv {
namespace {

TEST(Io, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "3 4 -1\n"
      "2 2 7\n");
  const auto m = io::read_matrix_market(in);
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.cols, 4);
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row_idx, (std::vector<index_t>{0, 1, 2}));
  EXPECT_EQ(m.col_idx, (std::vector<index_t>{0, 1, 3}));
  EXPECT_EQ(m.vals, (std::vector<real_t>{2.5, 7, -1}));
}

TEST(Io, ReadSymmetricMirrors) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 1\n");
  const auto m = io::read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3u);  // (1,0), (0,1) mirrored, (2,2) diagonal once
  std::vector<real_t> x = {1, 1, 1}, y(3);
  m.spmv(x, y);
  EXPECT_EQ(y, (std::vector<real_t>{5, 5, 1}));
}

TEST(Io, ReadSkewSymmetricNegates) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3\n");
  const auto m = io::read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.vals, (std::vector<real_t>{-3, 3}));
}

TEST(Io, ReadPatternDefaultsToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto m = io::read_matrix_market(in);
  EXPECT_EQ(m.vals, (std::vector<real_t>{1, 1}));
}

TEST(Io, RejectsMalformed) {
  std::istringstream bad_banner("%%NotMM matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(io::read_matrix_market(bad_banner), std::runtime_error);
  std::istringstream bad_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_THROW(io::read_matrix_market(bad_field), std::runtime_error);
  std::istringstream bad_format(
      "%%MatrixMarket matrix array real general\n1 1\n");
  EXPECT_THROW(io::read_matrix_market(bad_format), std::runtime_error);
  std::istringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(io::read_matrix_market(out_of_range), std::runtime_error);
  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(io::read_matrix_market(truncated), std::runtime_error);
}

TEST(Io, WriteReadRoundTrip) {
  const auto m = gen::random_scattered(60, 50, 4, 99);
  std::stringstream buf;
  io::write_matrix_market(buf, m);
  const auto back = io::read_matrix_market(buf);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.row_idx, m.row_idx);
  EXPECT_EQ(back.col_idx, m.col_idx);
  ASSERT_EQ(back.vals.size(), m.vals.size());
  for (std::size_t i = 0; i < m.vals.size(); ++i) {
    EXPECT_NEAR(back.vals[i], m.vals[i], 1e-15);
  }
}

TEST(Io, FileRoundTrip) {
  const auto m = gen::stencil2d(8, 8, true, 1);
  const std::string path = ::testing::TempDir() + "/yaspmv_io_test.mtx";
  io::write_matrix_market_file(path, m);
  const auto back = io::read_matrix_market_file(path);
  EXPECT_EQ(back.nnz(), m.nnz());
  EXPECT_THROW(io::read_matrix_market_file("/nonexistent/path.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace yaspmv
