// Specialization-grid tests (cpu/kernels_grid.hpp): every grid
// instantiation must be BITWISE identical to the generic kernel at a fixed
// (threads, simd level, segsum mode) — the grid extends the determinism
// contract, it must never fork it.  Sweeps all 36 chunk instantiations and
// the 3 fused-SpMM instantiations across threads {1, 4, 16} x dispatch
// levels {portable, avx2, avx512 when supported} x requested streams x
// slices, checks the out-of-grid fallback (bh = 3, kSerialFold, kGeneric
// pin) stays on the generic kernel, and pins dispatch determinism:
// identical engines resolve identical kernels and produce identical bits
// run to run.
#include "yaspmv/cpu/kernels_grid.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

using cpu::simd::Level;
using cpu::grid::KernelDispatch;

/// RAII guard: force a dispatch level for one test, restore after.
struct LevelGuard {
  Level saved;
  explicit LevelGuard(Level l) : saved(cpu::simd::active()) {
    cpu::simd::set_level(l);
  }
  ~LevelGuard() { cpu::simd::set_level(saved); }
};

std::vector<real_t> make_x(index_t cols, std::uint64_t seed = 0xC0FFEE) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  return x;
}

bool bitwise_eq(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0;
}

/// Format cache across the sweep: one Bccoo per (bw, bh, slices) serves
/// every stream/thread/level combination.
class FormatPool {
 public:
  explicit FormatPool(fmt::Coo a) : a_(std::move(a)) {}
  const fmt::Coo& coo() const { return a_; }
  std::shared_ptr<const core::Bccoo> get(index_t bw, index_t bh,
                                         index_t slices) {
    auto& slot = cache_[{bw, bh, slices}];
    if (!slot) {
      core::FormatConfig fc;
      fc.block_w = bw;
      fc.block_h = bh;
      fc.slices = slices;
      slot = std::make_shared<const core::Bccoo>(core::Bccoo::build(a_, fc));
    }
    return slot;
  }

 private:
  fmt::Coo a_;
  std::map<std::tuple<index_t, index_t, index_t>,
           std::shared_ptr<const core::Bccoo>>
      cache_;
};

/// One parity point: specialized (kAuto) vs pinned-generic engines on the
/// same format must produce bitwise-identical y, and the auto engine must
/// report the kernel id the pure dispatch function predicts.
void expect_parity(const std::shared_ptr<const core::Bccoo>& m,
                   const std::vector<real_t>& x, core::ColStream cs,
                   unsigned threads, bool expect_grid,
                   const std::string& what) {
  cpu::CpuSpmv spec(m, threads, cs);
  cpu::CpuSpmv gen(m, threads, cs, cpu::default_segsum_mode(),
                   KernelDispatch::kGeneric);
  ASSERT_STREQ(gen.kernel_id(), "generic") << what;
  ASSERT_FALSE(gen.specialized()) << what;
  ASSERT_STREQ(spec.kernel_id(),
               cpu::grid::dispatch_kernel_id(
                   static_cast<int>(m->cfg.block_w),
                   static_cast<int>(m->cfg.block_h), spec.col_stream(),
                   cpu::default_segsum_mode()))
      << what;
  if (expect_grid) {
    ASSERT_TRUE(spec.specialized())
        << what << ": expected a grid kernel, got " << spec.kernel_id();
    ASSERT_EQ(std::string(spec.kernel_id()).rfind("grid/", 0), 0u) << what;
  } else {
    ASSERT_STREQ(spec.kernel_id(), "generic") << what;
  }
  const auto rows = static_cast<std::size_t>(m->rows);
  std::vector<real_t> ys(rows, -1.0), yg(rows, -2.0);
  spec.spmv(x, ys);
  gen.spmv(x, yg);
  ASSERT_TRUE(bitwise_eq(ys, yg)) << what << ": specialized and generic "
                                  << "kernels diverged bitwise";
}

class GridLevels : public ::testing::TestWithParam<Level> {
 protected:
  static bool level_supported(Level l) {
    if (l == Level::kAvx2) return cpu::simd::cpu_has_avx2();
    if (l == Level::kAvx512) return cpu::simd::cpu_has_avx512();
    return true;
  }
};

// The full grid sweep: every (bw, bh) instantiation x requested stream x
// slices x threads, under the parameterized dispatch level, on a
// blocked-friendly mesh whose odd dimension (509) forces the padded-tail
// x-redirect for every bw > 1.
TEST_P(GridLevels, EveryInstantiationMatchesGenericBitwise) {
  if (!level_supported(GetParam())) {
    GTEST_SKIP() << "dispatch level unsupported on this host";
  }
  LevelGuard guard(GetParam());
  FormatPool pool(gen::fem_mesh(509, 24, 3, 0.05, 4));
  const auto x = make_x(pool.coo().cols);
  const index_t widths[] = {1, 2, 4, 8};
  const index_t heights[] = {1, 2, 4};
  const core::ColStream streams[] = {core::ColStream::kRaw,
                                     core::ColStream::kShort,
                                     core::ColStream::kDelta};
  const unsigned thread_counts[] = {1, 4, 16};
  const index_t slice_counts[] = {1, 3};
  for (index_t bw : widths) {
    for (index_t bh : heights) {
      for (index_t slices : slice_counts) {
        const auto m = pool.get(bw, bh, slices);
        for (core::ColStream cs : streams) {
          for (unsigned threads : thread_counts) {
            expect_parity(m, x, cs, threads, /*expect_grid=*/true,
                          "fem " + std::to_string(bw) + "x" +
                              std::to_string(bh) + "/" + core::to_string(cs) +
                              " slices=" + std::to_string(slices) +
                              " t=" + std::to_string(threads));
          }
        }
      }
    }
  }
}

// The scalar kernel's short-segment heuristic picks between two
// bit-different loops; a power-law matrix drives chunks into the
// single-pass branch and a scattered one covers empty rows — both must
// stay bitwise identical under specialization.
TEST_P(GridLevels, ScalarHeuristicAndScatteredRowsMatchBitwise) {
  if (!level_supported(GetParam())) {
    GTEST_SKIP() << "dispatch level unsupported on this host";
  }
  LevelGuard guard(GetParam());
  const fmt::Coo mats[] = {gen::powerlaw(600, 600, 4, 2.2, 0.4, 2),
                           gen::random_scattered(509, 509, 4, 5)};
  const char* names[] = {"powerlaw", "scattered"};
  for (int i = 0; i < 2; ++i) {
    FormatPool pool(mats[i]);
    const auto x = make_x(pool.coo().cols, 0xFEED + static_cast<unsigned>(i));
    for (core::ColStream cs :
         {core::ColStream::kRaw, core::ColStream::kShort,
          core::ColStream::kDelta}) {
      for (unsigned threads : {1u, 4u, 16u}) {
        expect_parity(pool.get(1, 1, 1), x, cs, threads,
                      /*expect_grid=*/true,
                      std::string(names[i]) + " 1x1/" + core::to_string(cs) +
                          " t=" + std::to_string(threads));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, GridLevels,
                         ::testing::Values(Level::kPortable, Level::kAvx2,
                                           Level::kAvx512));

// Out-of-grid block dims (the tuner's bh = 3 menu entries) must fall back
// to the generic kernel — and still be correct against the CSR reference.
TEST(KernelGrid, OutOfGridConfigsFallBackToGeneric) {
  FormatPool pool(gen::fem_mesh(420, 20, 3, 0.05, 7));
  const auto x = make_x(pool.coo().cols);
  std::vector<real_t> want(static_cast<std::size_t>(pool.coo().rows));
  fmt::Csr::from_coo(pool.coo()).spmv(x, want);
  const std::pair<index_t, index_t> dims[] = {{1, 3}, {2, 3}, {3, 1}, {4, 3}};
  for (const auto& [bw, bh] : dims) {
    const auto m = pool.get(bw, bh, 1);
    cpu::CpuSpmv eng(m, 4);
    ASSERT_STREQ(eng.kernel_id(), "generic")
        << bw << "x" << bh << " must be out of grid";
    ASSERT_FALSE(eng.specialized());
    std::vector<real_t> y(want.size());
    eng.spmv(x, y);
    for (std::size_t r = 0; r < want.size(); ++r) {
      ASSERT_NEAR(y[r], want[r], 1e-9 * std::max(1.0, std::abs(want[r])))
          << bw << "x" << bh << " row " << r;
    }
  }
}

// kSerialFold and an explicit kGeneric pin keep the generic kernel even
// for in-grid configs.
TEST(KernelGrid, SerialFoldAndGenericPinStayGeneric) {
  FormatPool pool(gen::fem_mesh(300, 20, 3, 0.05, 9));
  const auto m = pool.get(2, 2, 1);
  cpu::CpuSpmv fold(m, 4, core::ColStream::kAuto,
                    cpu::SegSumMode::kSerialFold);
  ASSERT_STREQ(fold.kernel_id(), "generic");
  ASSERT_FALSE(fold.specialized());
  cpu::CpuSpmv pinned(m, 4, core::ColStream::kAuto,
                      cpu::default_segsum_mode(), KernelDispatch::kGeneric);
  ASSERT_STREQ(pinned.kernel_id(), "generic");
  cpu::CpuSpmv autod(m, 4);
  ASSERT_TRUE(autod.specialized());
}

// Dispatch is deterministic: two identical engines resolve the same kernel
// id and produce bitwise-identical results across repeated applies.
TEST(KernelGrid, DispatchIsDeterministic) {
  FormatPool pool(gen::powerlaw(500, 500, 5, 2.1, 0.3, 3));
  const auto m = pool.get(2, 2, 1);
  const auto x = make_x(pool.coo().cols, 0xD15);
  cpu::CpuSpmv e1(m, 4), e2(m, 4);
  ASSERT_STREQ(e1.kernel_id(), e2.kernel_id());
  const auto rows = static_cast<std::size_t>(m->rows);
  std::vector<real_t> y1(rows), y2(rows), y1b(rows);
  e1.spmv(x, y1);
  e2.spmv(x, y2);
  e1.spmv(x, y1b);
  ASSERT_TRUE(bitwise_eq(y1, y2));
  ASSERT_TRUE(bitwise_eq(y1, y1b));
}

// The fused SpMM panel pass reuses the grid (stream burned in): specialized
// vs pinned-generic panels must match bitwise for every stream, and the
// engine must report the spmm grid id.
TEST(KernelGrid, FusedSpmmMatchesGenericBitwise) {
  FormatPool pool(gen::powerlaw(400, 400, 5, 2.2, 0.4, 6));
  const auto m = pool.get(1, 1, 1);
  const index_t k = 5;
  const auto colsz = static_cast<std::size_t>(m->cols);
  const auto rowsz = static_cast<std::size_t>(m->rows);
  const auto X = make_x(static_cast<index_t>(colsz * k), 0xAB);
  for (core::ColStream cs : {core::ColStream::kRaw, core::ColStream::kShort,
                             core::ColStream::kDelta}) {
    for (unsigned threads : {1u, 4u, 16u}) {
      cpu::CpuSpmm spec(m, threads, cs);
      cpu::CpuSpmm gen(m, threads, cs, cpu::default_segsum_mode(),
                       KernelDispatch::kGeneric);
      ASSERT_STREQ(gen.kernel_id(), "generic");
      ASSERT_EQ(std::string(spec.kernel_id()).rfind("grid/spmm/", 0), 0u)
          << spec.kernel_id();
      std::vector<real_t> Ys(rowsz * k, -1.0), Yg(rowsz * k, -2.0);
      spec.spmm(X, Ys, k);
      gen.spmm(X, Yg, k);
      ASSERT_TRUE(bitwise_eq(Ys, Yg))
          << "spmm " << core::to_string(cs) << " t=" << threads;
    }
  }
}

// Blocked formats route SpMM through the per-vector engine; the reported
// kernel id must be the per-vector dispatch, and results stay bitwise
// stable between auto and pinned-generic runs.
TEST(KernelGrid, BlockedSpmmReportsPerVectorKernel) {
  FormatPool pool(gen::fem_mesh(300, 20, 3, 0.05, 11));
  const auto m = pool.get(2, 2, 1);
  cpu::CpuSpmm spec(m, 2);
  ASSERT_EQ(std::string(spec.kernel_id()).rfind("grid/w2h2/", 0), 0u)
      << spec.kernel_id();
  const index_t k = 3;
  const auto X = make_x(static_cast<index_t>(m->cols * k), 0xBEEF);
  std::vector<real_t> Ys(static_cast<std::size_t>(m->rows) * k),
      Yg(Ys.size());
  cpu::CpuSpmm gen(m, 2, core::ColStream::kAuto, cpu::default_segsum_mode(),
                   KernelDispatch::kGeneric);
  spec.spmm(X, Ys, k);
  gen.spmm(X, Yg, k);
  ASSERT_TRUE(bitwise_eq(Ys, Yg));
}

// Error-message satellite: dims-check failures must name the config so
// tuner skip-and-record logs are actionable.
TEST(KernelGrid, DimsErrorsNameTheConfig) {
  FormatPool pool(gen::fem_mesh(300, 20, 3, 0.05, 13));
  const auto m = pool.get(2, 4, 1);
  cpu::CpuSpmv eng(m, 1, core::ColStream::kRaw);
  std::vector<real_t> x(3), y(static_cast<std::size_t>(m->rows));
  try {
    eng.spmv(x, y);
    FAIL() << "undersized x must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2x4/raw"), std::string::npos) << msg;
    EXPECT_NE(msg.find("x[3]"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace yaspmv
