// Malformed-input corpus for the two readers: every hostile or damaged
// input must produce a classified SpmvError (FormatInvalid / IoError /
// DataCorruption), never an unbounded allocation, silent garbage, or an
// uncaught parse error.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/binary.hpp"
#include "yaspmv/io/matrix_market.hpp"

namespace yaspmv {
namespace {

fmt::Coo parse(const std::string& text, io::MatrixMarketOptions opt = {}) {
  std::istringstream in(text);
  return io::read_matrix_market(in, opt);
}

// ---- Matrix Market ---------------------------------------------------------

TEST(MalformedMM, RejectsMissingBanner) {
  EXPECT_THROW(parse("3 3 1\n1 1 1.0\n"), FormatInvalid);
}

TEST(MalformedMM, RejectsEmptyStream) {
  EXPECT_THROW(parse(""), FormatInvalid);
}

TEST(MalformedMM, RejectsMissingSizeLine) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "% only comments\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsNegativeSizes) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "-3 3 1\n1 1 1.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsDimensionOverflow) {
  // 2^32 rows overflows the 32-bit index type.
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "4294967296 3 1\n1 1 1.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsEntryCountOverflow) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 4294967296\n1 1 1.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsMirroredEntryCountOverflow) {
  // 1.2e9 stored entries fit index_t, but the symmetric mirror doubles them
  // past 2^31 — must be rejected before any allocation.
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real symmetric\n"
                     "50000 50000 1200000000\n1 1 1.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsEntryCountBeyondMatrixCells) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 10\n1 1 1.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsTruncatedEntryList) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 3\n1 1 1.0\n2 2 2.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsOutOfRangeEntry) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 1\n4 1 1.0\n"),
               FormatInvalid);
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 1\n0 1 1.0\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsGarbageEntryLine) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 1\npotato\n"),
               FormatInvalid);
}

TEST(MalformedMM, RejectsMissingValue) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "3 3 1\n1 1\n"),
               FormatInvalid);
}

TEST(MalformedMM, ToleratesBlankAndCommentLinesInsideEntries) {
  const auto m = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "% header comment\n"
      "\n"
      "3 3 2\n"
      "1 1 1.5\n"
      "\n"
      "% mid-list comment\n"
      "   \n"
      "3 2 -2.0\n");
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.vals[0], 1.5);
}

TEST(MalformedMM, NonFinitePolicy) {
  const std::string nan_mtx =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n1 1 nan\n";
  EXPECT_THROW(parse(nan_mtx), FormatInvalid);
  io::MatrixMarketOptions opt;
  opt.allow_nonfinite = true;
  const auto m = parse(nan_mtx, opt);
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_TRUE(std::isnan(m.vals[0]));

  const std::string inf_mtx =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n2 2 inf\n";
  EXPECT_THROW(parse(inf_mtx), FormatInvalid);
  EXPECT_NO_THROW(parse(inf_mtx, opt));
}

TEST(MalformedMM, MissingFileIsIoError) {
  EXPECT_THROW(io::read_matrix_market_file("/nonexistent/never.mtx"),
               IoError);
}

// ---- binary format ---------------------------------------------------------

fmt::Coo small_matrix() { return gen::stencil2d(8, 8, true, 0x10); }

std::string coo_bytes(const fmt::Coo& m) {
  std::ostringstream out;
  io::save_coo(out, m);
  return out.str();
}

std::string bccoo_bytes(const core::Bccoo& m) {
  std::ostringstream out;
  io::save_bccoo(out, m);
  return out.str();
}

TEST(MalformedBinary, CooRoundTripStillWorks) {
  const auto a = small_matrix();
  std::istringstream in(coo_bytes(a));
  const auto b = io::load_coo(in);
  EXPECT_EQ(b.rows, a.rows);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_EQ(b.vals, a.vals);
}

TEST(MalformedBinary, BccooRoundTripStillWorks) {
  const auto m = core::Bccoo::build(small_matrix(), {});
  std::istringstream in(bccoo_bytes(m));
  const auto b = io::load_bccoo(in);
  EXPECT_EQ(b.num_blocks, m.num_blocks);
  EXPECT_EQ(b.value_rows, m.value_rows);
  EXPECT_NO_THROW(b.validate());
}

TEST(MalformedBinary, RejectsBadMagic) {
  auto bytes = coo_bytes(small_matrix());
  bytes[0] ^= 0x5A;
  std::istringstream in(bytes);
  EXPECT_THROW(io::load_coo(in), FormatInvalid);
}

TEST(MalformedBinary, RejectsWrongVersion) {
  auto bytes = coo_bytes(small_matrix());
  bytes[4] ^= 0x7F;  // version field follows the 4-byte magic
  std::istringstream in(bytes);
  EXPECT_THROW(io::load_coo(in), FormatInvalid);
}

TEST(MalformedBinary, TruncationIsIoError) {
  const auto bytes = coo_bytes(small_matrix());
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{9}}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW(io::load_coo(in), SpmvError) << "cut at " << cut;
  }
}

TEST(MalformedBinary, FlippedPayloadByteIsDataCorruption) {
  auto bytes = coo_bytes(small_matrix());
  bytes[bytes.size() / 2] ^= 0x01;  // deep inside the value payload
  std::istringstream in(bytes);
  EXPECT_THROW(io::load_coo(in), DataCorruption);
}

TEST(MalformedBinary, FlippedBccooPayloadByteIsDataCorruption) {
  auto bytes = bccoo_bytes(core::Bccoo::build(small_matrix(), {}));
  bytes[bytes.size() / 2] ^= 0x10;
  std::istringstream in(bytes);
  EXPECT_THROW(io::load_bccoo(in), SpmvError);
}

TEST(MalformedBinary, HostileArrayLengthRejectedBeforeAllocation) {
  // Hand-craft a COO header whose row-index array claims ~2^61 elements;
  // the overflow-safe length check must reject it without allocating.
  auto bytes = coo_bytes(small_matrix());
  const std::size_t len_off = 8 /*magic+version*/ + 8 /*rows+cols*/;
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[len_off + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  std::istringstream in(bytes);
  EXPECT_THROW(io::load_coo(in), FormatInvalid);
}

TEST(MalformedBinary, LoadedBccooRebuildsValidColumnStreams) {
  // The compressed column streams are derived data, not part of the file
  // format: a round-trip must rebuild them and they must pass the stream
  // invariants.  Tampering any stream afterwards must be caught.
  const auto m = core::Bccoo::build(small_matrix(), {});
  std::istringstream in(bccoo_bytes(m));
  auto b = io::load_bccoo(in);
  EXPECT_TRUE(b.col_streams_built);
  EXPECT_EQ(b.delta_cols, m.delta_cols);
  EXPECT_EQ(b.short_cols, m.short_cols);
  EXPECT_NO_THROW(b.validate());
  auto tampered = b;
  ASSERT_FALSE(tampered.delta_escape_start.empty());
  tampered.delta_escape_start.back() += 1;
  EXPECT_THROW(tampered.validate(), FormatInvalid);
  tampered = b;
  ASSERT_FALSE(tampered.short_cols.empty());
  tampered.short_cols.front() ^= 0x4;
  EXPECT_THROW(tampered.validate(), FormatInvalid);
}

TEST(MalformedBinary, MissingBinaryFileIsIoError) {
  EXPECT_THROW(io::load_coo_file("/nonexistent/never.bin"), IoError);
  EXPECT_THROW(io::load_bccoo_file("/nonexistent/never.bin"), IoError);
}

}  // namespace
}  // namespace yaspmv
