// Performance-model tests: the modeled time must respond to each counter
// the way the paper's argument requires (bandwidth-bound, divergence
// penalty, launch overhead, device differences).
#include "yaspmv/perf/model.hpp"

#include <gtest/gtest.h>

namespace yaspmv {
namespace {

sim::KernelStats bandwidth_bound(std::size_t mb) {
  sim::KernelStats st;
  st.global_load_bytes = mb * 1000 * 1000;
  st.flops = 1000;  // negligible
  st.kernel_launches = 1;
  return st;
}

TEST(PerfModel, MemoryTermDominatesSpMV) {
  const auto dev = sim::gtx680();
  const auto t = perf::model_time(dev, bandwidth_bound(100));
  EXPECT_GT(t.mem_s, t.compute_s * 100);
  EXPECT_NEAR(t.total_s,
              100e6 / (dev.mem_bandwidth_gbps * 1e9 * dev.mem_efficiency) +
                  t.launch_s,
              1e-6);
}

TEST(PerfModel, HalfTheBytesTwiceTheThroughput) {
  const auto dev = sim::gtx680();
  const double g1 = perf::spmv_gflops(dev, bandwidth_bound(100), 1000000);
  const double g2 = perf::spmv_gflops(dev, bandwidth_bound(50), 1000000);
  EXPECT_NEAR(g2 / g1, 2.0, 0.05);  // footprint reduction argument (Table 3)
}

TEST(PerfModel, DivergenceThrottlesMemoryPartially) {
  auto st = bandwidth_bound(100);
  st.ideal_lanes = 100;
  st.serialized_lanes = 300;  // 3x divergent
  const auto dev = sim::gtx680();
  const auto t = perf::model_time(dev, st);
  const auto t0 = perf::model_time(dev, bandwidth_bound(100));
  // Only the exposed fraction of the 3x slowdown is charged.
  const double expect = 1.0 + (3.0 - 1.0) * dev.divergence_exposure;
  EXPECT_NEAR(t.mem_s / t0.mem_s, expect, 1e-9);
  EXPECT_GT(t.mem_s, t0.mem_s);
  EXPECT_LT(t.mem_s, t0.mem_s * 3.0);
  // Fermi exposes more of the divergence than Kepler.
  const auto t480 = perf::model_time(sim::gtx480(), st);
  const auto t480_0 = perf::model_time(sim::gtx480(), bandwidth_bound(100));
  EXPECT_GT(t480.mem_s / t480_0.mem_s, t.mem_s / t0.mem_s);
}

TEST(PerfModel, LaunchOverheadPerKernel) {
  auto one = bandwidth_bound(1);
  auto two = bandwidth_bound(1);
  two.kernel_launches = 2;
  const auto dev = sim::gtx680();
  const auto t1 = perf::model_time(dev, one);
  const auto t2 = perf::model_time(dev, two);
  EXPECT_NEAR(t2.total_s - t1.total_s, dev.kernel_launch_us * 1e-6, 1e-12);
}

TEST(PerfModel, AtomicAndSpinOverheadCounted) {
  auto st = bandwidth_bound(1);
  st.atomic_ops = 1000;
  st.spin_waits = 1000;
  const auto dev = sim::gtx680();
  const auto t = perf::model_time(dev, st);
  EXPECT_GT(t.sync_s, 0.0);
  EXPECT_NEAR(t.sync_s,
              1000 * dev.atomic_op_ns * 1e-9 + 1000 * dev.spin_wait_ns * 1e-9,
              1e-15);
}

TEST(PerfModel, Gtx680FasterThanGtx480OnSameTraffic) {
  const auto st = bandwidth_bound(100);
  EXPECT_GT(perf::spmv_gflops(sim::gtx680(), st, 1000000),
            perf::spmv_gflops(sim::gtx480(), st, 1000000));
}

TEST(PerfModel, ComputeBoundKernelUsesPeak) {
  sim::KernelStats st;
  st.flops = 1'000'000'000;
  st.global_load_bytes = 8;
  st.kernel_launches = 1;
  const auto dev = sim::gtx680();
  const auto t = perf::model_time(dev, st);
  EXPECT_NEAR(t.compute_s, 1.0 / dev.peak_gflops_sp, 1e-9);
  EXPECT_GT(t.compute_s, t.mem_s);
}

TEST(PerfModel, HarmonicMean) {
  const double v[3] = {1.0, 2.0, 4.0};
  EXPECT_NEAR(perf::harmonic_mean(v, 3), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
  EXPECT_EQ(perf::harmonic_mean(v, 0), 0.0);
  const double z[2] = {1.0, 0.0};
  EXPECT_EQ(perf::harmonic_mean(z, 2), 0.0);
}

TEST(PerfModel, ZeroStatsZeroGflops) {
  sim::KernelStats st;
  EXPECT_EQ(perf::spmv_gflops(sim::gtx680(), st, 0), 0.0);
}

}  // namespace
}  // namespace yaspmv
