// Execution-plan tests: padding, auxiliary arrays (Section 2.4), column
// compression (Sections 2.2/4) and the offline transpose layout.
#include "yaspmv/core/plan.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "yaspmv/io/plan_io.hpp"
#include "yaspmv/serve/plan_cache.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

// Matrix C of Eq. 2 with 1x1 blocks: 16 non-zero blocks, bit flags of
// Figure 6(a).
fmt::Coo matrix_C() {
  // Row 0: cols 0,2,4,6,7; row 1: 3,6; row 2: 1,3,5; row 3: 1,2,3,5,6,7.
  std::vector<index_t> ri = {0, 0, 0, 0, 0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 3, 3};
  std::vector<index_t> ci = {0, 2, 4, 6, 7, 3, 6, 1, 3, 5, 1, 2, 3, 5, 6, 7};
  std::vector<real_t> v(16, 1.0);
  return fmt::Coo::from_triplets(4, 8, std::move(ri), std::move(ci),
                                 std::move(v));
}

TEST(Plan, Figure6FirstResultEntries) {
  // 4 threads x 4 blocks/thread: entries [0, 0, 2, 3] per Figure 6(b).
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  ec.workgroup_size = 4;
  ec.thread_tile = 4;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.num_workgroups, 1);
  ASSERT_EQ(p.first_result_entry.size(), 4u);
  EXPECT_EQ(p.first_result_entry,
            (std::vector<index_t>{0, 0, 2, 3}));
  EXPECT_EQ(p.wg_first_entry, (std::vector<index_t>{0, 4}));
}

TEST(Plan, PaddingToWorkgroupTile) {
  const auto m = core::Bccoo::build(matrix_C(), {});  // 16 blocks
  core::ExecConfig ec;
  ec.workgroup_size = 64;
  ec.thread_tile = 8;  // workgroup tile = 512
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.padded_blocks, 512u);
  EXPECT_EQ(p.num_workgroups, 1);
  EXPECT_EQ(p.bit_flags.size(), 512u);
  // Padding bits are 1 (never a row stop).
  for (std::size_t i = 16; i < 512; ++i) EXPECT_TRUE(p.bit_flags.get(i));
  EXPECT_EQ(p.col_abs.size(), 512u);
  EXPECT_EQ(p.value_rows[0].size(), 512u);
}

TEST(Plan, SkipScanFlagPerWorkgroup) {
  // Diagonal matrix: every thread tile contains a row stop -> skip = 1.
  std::vector<index_t> ri(128), ci(128);
  std::vector<real_t> v(128, 1.0);
  for (index_t i = 0; i < 128; ++i) ri[static_cast<std::size_t>(i)] =
      ci[static_cast<std::size_t>(i)] = i;
  const auto diag = fmt::Coo::from_triplets(128, 128, std::move(ri),
                                            std::move(ci), std::move(v));
  core::ExecConfig ec;
  ec.workgroup_size = 16;
  ec.thread_tile = 4;
  {
    const auto m = core::Bccoo::build(diag, {});
    const auto p = core::BccooPlan::build(m, ec);
    ASSERT_EQ(p.skip_scan.size(), 2u);
    EXPECT_EQ(p.skip_scan[0], 1);
    EXPECT_EQ(p.skip_scan[1], 1);
  }
  // One long row spanning everything: no stops except the last tile.
  std::vector<index_t> ri2(128, 0), ci2(128);
  std::vector<real_t> v2(128, 1.0);
  for (index_t i = 0; i < 128; ++i) ci2[static_cast<std::size_t>(i)] = i;
  const auto wide = fmt::Coo::from_triplets(1, 128, std::move(ri2),
                                            std::move(ci2), std::move(v2));
  {
    const auto m = core::Bccoo::build(wide, {});
    const auto p = core::BccooPlan::build(m, ec);
    for (auto s : p.skip_scan) EXPECT_EQ(s, 0);
  }
}

TEST(Plan, ShortColIndexWhenNarrow) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_TRUE(p.col_u16_valid);
  for (std::size_t i = 0; i < m.num_blocks; ++i) {
    EXPECT_EQ(static_cast<index_t>(p.col_u16[i]), p.col_abs[i]);
  }
  EXPECT_EQ(p.col_bytes_per_block(), bytes::kShortIndex);
  core::ExecConfig no_short = ec;
  no_short.short_col_index = false;
  const auto p2 = core::BccooPlan::build(m, no_short);
  EXPECT_EQ(p2.col_bytes_per_block(), bytes::kIndex);
}

TEST(Plan, DeltaCompressionRoundTrip) {
  SplitMix64 rng(11);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (int i = 0; i < 500; ++i) {
    ri.push_back(static_cast<index_t>(rng.next_below(40)));
    ci.push_back(static_cast<index_t>(rng.next_below(100000)));
    v.push_back(1.0);
  }
  const auto A = fmt::Coo::from_triplets(40, 100000, std::move(ri),
                                         std::move(ci), std::move(v));
  const auto m = core::Bccoo::build(A, {});
  core::ExecConfig ec;
  ec.compress_col_delta = true;
  ec.thread_tile = 8;
  const auto p = core::BccooPlan::build(m, ec);
  // Decode every block like the kernel does and compare to the absolute
  // column array.
  index_t prev = 0;
  for (std::size_t i = 0; i < p.padded_blocks; ++i) {
    const int j = static_cast<int>(i % 8);
    const index_t got = p.decode_col(i, j, prev);
    prev = got;
    EXPECT_EQ(got, p.col_abs[i]) << "block " << i;
  }
  // Wide matrix: some escapes are inevitable.
  EXPECT_GT(p.delta_escapes, 0u);
}

TEST(Plan, DeltaEscapeOnGenuineMinusOne) {
  // Columns 5 then 4 in one tile: genuine delta of -1 must escape and still
  // decode correctly.
  const auto A = fmt::Coo::from_triplets(1, 6, {0, 0}, {4, 5}, {1.0, 1.0});
  // Build reversed access by using two rows so order is (5 after 4)... the
  // canonical order sorts ascending, so construct with rows to force a -1
  // delta: row0 col5 then row1 col4.
  const auto B = fmt::Coo::from_triplets(2, 6, {0, 1}, {5, 4}, {1.0, 1.0});
  (void)A;
  const auto m = core::Bccoo::build(B, {});
  core::ExecConfig ec;
  ec.compress_col_delta = true;
  ec.thread_tile = 2;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.col_delta[1], -1);  // escaped
  EXPECT_EQ(p.decode_col(1, 1, 5), 4);
}

TEST(Plan, OfflineTransposeLayout) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  ec.workgroup_size = 4;
  ec.thread_tile = 4;
  ec.transpose = core::Transpose::kOffline;
  const auto p = core::BccooPlan::build(m, ec);
  // Element e of thread t lives at e*W + t (single workgroup, bw = 1).
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t e = 0; e < 4; ++e) {
      EXPECT_EQ(p.value_rows_t[0][e * 4 + t], p.value_rows[0][t * 4 + e]);
      EXPECT_EQ(p.col_abs_t[e * 4 + t], p.col_abs[t * 4 + e]);
    }
  }
}

TEST(Plan, ValidatesExecConfig) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  ec.workgroup_size = 48;  // not a power of two
  EXPECT_THROW(core::BccooPlan::build(m, ec), std::invalid_argument);
  ec.workgroup_size = 64;
  ec.thread_tile = 0;
  EXPECT_THROW(core::BccooPlan::build(m, ec), std::invalid_argument);
  ec.thread_tile = 4;
  ec.shm_tile = 5;
  EXPECT_THROW(core::BccooPlan::build(m, ec), std::invalid_argument);
}

TEST(Plan, FootprintGrowsWithAux) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig small;
  small.workgroup_size = 4;
  small.thread_tile = 4;
  core::ExecConfig big;
  big.workgroup_size = 64;
  big.thread_tile = 1;  // many more threads -> more aux entries
  const auto ps = core::BccooPlan::build(m, small);
  const auto pb = core::BccooPlan::build(m, big);
  EXPECT_LT(ps.footprint_bytes(), pb.footprint_bytes());
}

TEST(Plan, EmptyMatrix) {
  const auto A = fmt::Coo::from_triplets(4, 4, {}, {}, {});
  const auto m = core::Bccoo::build(A, {});
  EXPECT_EQ(m.num_blocks, 0u);
  core::ExecConfig ec;
  ec.workgroup_size = 64;
  ec.thread_tile = 2;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.num_workgroups, 1);  // one all-padding workgroup
  EXPECT_EQ(p.padded_blocks, 128u);
}

// ---- durable plan-cache format (io/plan_io + serve/PlanCache) -------------
//
// The crash-safety contract: any damaged plan file — truncated, bit-flipped,
// stale code version, wrong device — loads as a MISS through PlanCache,
// never as a crash and never as a wrong plan.

namespace {

io::PlanRecord sample_record() {
  io::PlanRecord rec;
  rec.payload_checksum = 0x1234567890ABCDEFull;
  rec.device = "GTX680";
  rec.best.format.block_w = 2;
  rec.best.format.block_h = 4;
  rec.best.format.slices = 4;
  rec.best.exec.strategy = core::Strategy::kResultCache;
  rec.best.exec.workgroup_size = 128;
  rec.best.exec.thread_tile = 8;
  rec.best.exec.adjacent_sync = false;
  rec.best.exec.workers = 3;
  rec.best.gflops = 123.456;
  rec.best.footprint = 987654;
  rec.best.measured_gflops = 7.5;
  rec.best.measured_bytes = 4242;
  rec.tuning_seconds = 2.25;
  rec.evaluated = 184;
  return rec;
}

struct CacheDir {
  std::filesystem::path dir;
  CacheDir() {
    static int counter = 0;
    dir = std::filesystem::temp_directory_path() /
          ("yaspmv-plan-cache-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter++));
  }
  ~CacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

}  // namespace

TEST(PlanCacheFile, RoundTripPreservesEveryPlanField) {
  const auto rec = sample_record();
  std::stringstream ss;
  io::save_plan(ss, rec);
  const auto back = io::load_plan(ss);
  EXPECT_EQ(back.payload_checksum, rec.payload_checksum);
  EXPECT_EQ(back.device, rec.device);
  EXPECT_EQ(back.code_version, io::kPlanCodeVersion);
  EXPECT_TRUE(back.best.same_plan(rec.best));
  EXPECT_EQ(back.best.exec.workers, 3u);
  EXPECT_EQ(back.tuning_seconds, rec.tuning_seconds);
  EXPECT_EQ(back.evaluated, rec.evaluated);
}

TEST(PlanCacheFile, StoreThenLoadThroughCache) {
  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  const auto rec = sample_record();
  ASSERT_TRUE(cache.store(rec));
  const auto back = cache.load(rec.payload_checksum, rec.device);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->best.same_plan(rec.best));
  // No leftover temp files after a clean store.
  for (const auto& e :
       std::filesystem::directory_iterator(tmp.dir)) {
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos);
  }
}

TEST(PlanCacheFile, TruncatedFileLoadsAsMiss) {
  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  const auto rec = sample_record();
  ASSERT_TRUE(cache.store(rec));
  const std::string path = cache.path_for(rec.payload_checksum, rec.device);
  // Chop the file at every prefix length: none of them may crash, all of
  // them must be a miss (a torn write can stop at ANY byte).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                           bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(cache.load(rec.payload_checksum, rec.device).has_value())
        << "truncation at " << keep << " bytes was not a miss";
  }
}

TEST(PlanCacheFile, FlippedByteFailsTheChecksumAndLoadsAsMiss) {
  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  const auto rec = sample_record();
  ASSERT_TRUE(cache.store(rec));
  const std::string path = cache.path_for(rec.payload_checksum, rec.device);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one byte in the checksummed payload region (past magic + file
  // version) and in the trailing checksum itself.
  for (const std::size_t victim : {bytes.size() / 2, bytes.size() - 2}) {
    std::string corrupt = bytes;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    EXPECT_FALSE(cache.load(rec.payload_checksum, rec.device).has_value())
        << "bit flip at byte " << victim << " was not a miss";
  }
}

TEST(PlanCacheFile, StaleCodeVersionLoadsAsMiss) {
  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  auto rec = sample_record();
  rec.code_version = io::kPlanCodeVersion + 1;  // "from a newer build"
  ASSERT_TRUE(cache.store(rec));
  // The container round-trips fine; the version gate must reject it.
  EXPECT_FALSE(cache.load(rec.payload_checksum, rec.device).has_value());
}

TEST(PlanCacheFile, MismatchedDeviceOrMatrixLoadsAsMiss) {
  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  const auto rec = sample_record();
  ASSERT_TRUE(cache.store(rec));
  // Forged file name: copy the record under the key of another device and
  // another matrix.  The embedded record must win — both load as a miss.
  const std::string src = cache.path_for(rec.payload_checksum, rec.device);
  std::filesystem::copy_file(
      src, cache.path_for(rec.payload_checksum, "GTX480"));
  std::filesystem::copy_file(src, cache.path_for(0xBAD, rec.device));
  EXPECT_FALSE(cache.load(rec.payload_checksum, "GTX480").has_value());
  EXPECT_FALSE(cache.load(0xBAD, rec.device).has_value());
  // The honest key still hits.
  EXPECT_TRUE(cache.load(rec.payload_checksum, rec.device).has_value());
}

TEST(PlanCacheFile, MissingDirectoryAndMissingFileAreMisses) {
  serve::PlanCache cache("/nonexistent/definitely/not/here");
  EXPECT_FALSE(cache.load(1, "GTX680").has_value());
  CacheDir tmp;
  serve::PlanCache empty(tmp.dir.string());
  EXPECT_FALSE(empty.load(1, "GTX680").has_value());
  EXPECT_EQ(empty.sweep_stale_temps(), 0);
}

TEST(PlanCacheFile, ImplausibleConfigFieldsAreRejected) {
  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  auto rec = sample_record();
  rec.best.format.block_w = 1 << 20;  // would never come out of the tuner
  ASSERT_TRUE(cache.store(rec));
  EXPECT_FALSE(cache.load(rec.payload_checksum, rec.device).has_value());
}

TEST(PlanCacheFile, V1LayoutPlanLoadsAsMissNeverMisparses) {
  // Hand-author a byte-exact v1 plan file: code_version = 1 and a candidate
  // WITHOUT the v2 kernel-id field, with an internally consistent trailing
  // digest (a real v1 binary wrote exactly this).  The loader must reject
  // it on the code-version gate — before the layout difference can
  // mis-parse downstream fields into a plausible-looking wrong plan — and
  // through PlanCache that rejection is a miss, i.e. a retune, never a
  // wrong dispatch.
  std::ostringstream out;
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto raw = [&](const void* p, std::size_t n, bool hashed) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    if (!hashed) return;
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  };
  const auto put32 = [&](std::uint32_t v, bool hashed = true) {
    raw(&v, sizeof v, hashed);
  };
  const auto puti32 = [&](std::int32_t v) { raw(&v, sizeof v, true); };
  const auto put8 = [&](std::uint8_t v) { raw(&v, sizeof v, true); };
  const auto put64 = [&](std::uint64_t v) { raw(&v, sizeof v, true); };
  const auto putd = [&](double v) { raw(&v, sizeof v, true); };

  const std::uint64_t payload = 0x1234567890ABCDEFull;
  const std::string device = "GTX680";
  put32(0x4E4C5059, /*hashed=*/false);  // magic "YPLN" (header unhashed)
  put32(1, /*hashed=*/false);           // file version
  put32(1);                             // code_version: the v1 vintage
  put64(payload);
  put32(static_cast<std::uint32_t>(device.size()));
  raw(device.data(), device.size(), true);
  puti32(2);   // block_w
  puti32(4);   // block_h
  put8(0);     // bf_word
  puti32(4);   // slices
  put8(1);     // strategy
  puti32(128); // workgroup_size
  puti32(8);   // thread_tile
  puti32(1);   // shm_tile
  puti32(1);   // result_cache_multiple
  put8(0);     // transpose
  put8(4u | 16u);  // flags: short_col_index | skip_scan_opt
  put32(3);    // workers
  putd(123.456);       // gflops
  put64(987654);       // footprint
  putd(7.5);           // measured_gflops
  put64(4242);         // measured_bytes
  // v1 stops here: no kernel-id string.
  putd(2.25);  // tuning_seconds
  puti32(184); // evaluated
  const std::uint64_t digest = h;
  raw(&digest, sizeof digest, false);

  std::istringstream in(out.str());
  try {
    io::load_plan(in);
    FAIL() << "a v1-layout plan must not load";
  } catch (const FormatInvalid& e) {
    EXPECT_NE(std::string(e.what()).find("stale plan code version 1"),
              std::string::npos)
        << e.what();
  }

  CacheDir tmp;
  serve::PlanCache cache(tmp.dir.string());
  std::filesystem::create_directories(tmp.dir);
  {
    std::ofstream f(cache.path_for(payload, device), std::ios::binary);
    const std::string bytes = out.str();
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(cache.load(payload, device).has_value())
      << "stale-version plan file must load as a miss";
}

TEST(PlanCacheFile, PayloadChecksumTracksMatrixIdentity) {
  SplitMix64 rng(7);
  std::vector<index_t> ri = {0, 1, 2}, ci = {1, 2, 0};
  std::vector<real_t> v = {1.0, 2.0, 3.0};
  const auto a = fmt::Coo::from_triplets(3, 3, ri, ci, v);
  const auto sum = io::payload_checksum(a);
  EXPECT_EQ(io::payload_checksum(a), sum);  // deterministic
  auto v2 = v;
  v2[1] = 2.5;  // one value changes -> different identity
  const auto b = fmt::Coo::from_triplets(3, 3, ri, ci, v2);
  EXPECT_NE(io::payload_checksum(b), sum);
}

}  // namespace
}  // namespace yaspmv
