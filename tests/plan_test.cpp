// Execution-plan tests: padding, auxiliary arrays (Section 2.4), column
// compression (Sections 2.2/4) and the offline transpose layout.
#include "yaspmv/core/plan.hpp"

#include <gtest/gtest.h>

#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

// Matrix C of Eq. 2 with 1x1 blocks: 16 non-zero blocks, bit flags of
// Figure 6(a).
fmt::Coo matrix_C() {
  // Row 0: cols 0,2,4,6,7; row 1: 3,6; row 2: 1,3,5; row 3: 1,2,3,5,6,7.
  std::vector<index_t> ri = {0, 0, 0, 0, 0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 3, 3};
  std::vector<index_t> ci = {0, 2, 4, 6, 7, 3, 6, 1, 3, 5, 1, 2, 3, 5, 6, 7};
  std::vector<real_t> v(16, 1.0);
  return fmt::Coo::from_triplets(4, 8, std::move(ri), std::move(ci),
                                 std::move(v));
}

TEST(Plan, Figure6FirstResultEntries) {
  // 4 threads x 4 blocks/thread: entries [0, 0, 2, 3] per Figure 6(b).
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  ec.workgroup_size = 4;
  ec.thread_tile = 4;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.num_workgroups, 1);
  ASSERT_EQ(p.first_result_entry.size(), 4u);
  EXPECT_EQ(p.first_result_entry,
            (std::vector<index_t>{0, 0, 2, 3}));
  EXPECT_EQ(p.wg_first_entry, (std::vector<index_t>{0, 4}));
}

TEST(Plan, PaddingToWorkgroupTile) {
  const auto m = core::Bccoo::build(matrix_C(), {});  // 16 blocks
  core::ExecConfig ec;
  ec.workgroup_size = 64;
  ec.thread_tile = 8;  // workgroup tile = 512
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.padded_blocks, 512u);
  EXPECT_EQ(p.num_workgroups, 1);
  EXPECT_EQ(p.bit_flags.size(), 512u);
  // Padding bits are 1 (never a row stop).
  for (std::size_t i = 16; i < 512; ++i) EXPECT_TRUE(p.bit_flags.get(i));
  EXPECT_EQ(p.col_abs.size(), 512u);
  EXPECT_EQ(p.value_rows[0].size(), 512u);
}

TEST(Plan, SkipScanFlagPerWorkgroup) {
  // Diagonal matrix: every thread tile contains a row stop -> skip = 1.
  std::vector<index_t> ri(128), ci(128);
  std::vector<real_t> v(128, 1.0);
  for (index_t i = 0; i < 128; ++i) ri[static_cast<std::size_t>(i)] =
      ci[static_cast<std::size_t>(i)] = i;
  const auto diag = fmt::Coo::from_triplets(128, 128, std::move(ri),
                                            std::move(ci), std::move(v));
  core::ExecConfig ec;
  ec.workgroup_size = 16;
  ec.thread_tile = 4;
  {
    const auto m = core::Bccoo::build(diag, {});
    const auto p = core::BccooPlan::build(m, ec);
    ASSERT_EQ(p.skip_scan.size(), 2u);
    EXPECT_EQ(p.skip_scan[0], 1);
    EXPECT_EQ(p.skip_scan[1], 1);
  }
  // One long row spanning everything: no stops except the last tile.
  std::vector<index_t> ri2(128, 0), ci2(128);
  std::vector<real_t> v2(128, 1.0);
  for (index_t i = 0; i < 128; ++i) ci2[static_cast<std::size_t>(i)] = i;
  const auto wide = fmt::Coo::from_triplets(1, 128, std::move(ri2),
                                            std::move(ci2), std::move(v2));
  {
    const auto m = core::Bccoo::build(wide, {});
    const auto p = core::BccooPlan::build(m, ec);
    for (auto s : p.skip_scan) EXPECT_EQ(s, 0);
  }
}

TEST(Plan, ShortColIndexWhenNarrow) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_TRUE(p.col_u16_valid);
  for (std::size_t i = 0; i < m.num_blocks; ++i) {
    EXPECT_EQ(static_cast<index_t>(p.col_u16[i]), p.col_abs[i]);
  }
  EXPECT_EQ(p.col_bytes_per_block(), bytes::kShortIndex);
  core::ExecConfig no_short = ec;
  no_short.short_col_index = false;
  const auto p2 = core::BccooPlan::build(m, no_short);
  EXPECT_EQ(p2.col_bytes_per_block(), bytes::kIndex);
}

TEST(Plan, DeltaCompressionRoundTrip) {
  SplitMix64 rng(11);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (int i = 0; i < 500; ++i) {
    ri.push_back(static_cast<index_t>(rng.next_below(40)));
    ci.push_back(static_cast<index_t>(rng.next_below(100000)));
    v.push_back(1.0);
  }
  const auto A = fmt::Coo::from_triplets(40, 100000, std::move(ri),
                                         std::move(ci), std::move(v));
  const auto m = core::Bccoo::build(A, {});
  core::ExecConfig ec;
  ec.compress_col_delta = true;
  ec.thread_tile = 8;
  const auto p = core::BccooPlan::build(m, ec);
  // Decode every block like the kernel does and compare to the absolute
  // column array.
  index_t prev = 0;
  for (std::size_t i = 0; i < p.padded_blocks; ++i) {
    const int j = static_cast<int>(i % 8);
    const index_t got = p.decode_col(i, j, prev);
    prev = got;
    EXPECT_EQ(got, p.col_abs[i]) << "block " << i;
  }
  // Wide matrix: some escapes are inevitable.
  EXPECT_GT(p.delta_escapes, 0u);
}

TEST(Plan, DeltaEscapeOnGenuineMinusOne) {
  // Columns 5 then 4 in one tile: genuine delta of -1 must escape and still
  // decode correctly.
  const auto A = fmt::Coo::from_triplets(1, 6, {0, 0}, {4, 5}, {1.0, 1.0});
  // Build reversed access by using two rows so order is (5 after 4)... the
  // canonical order sorts ascending, so construct with rows to force a -1
  // delta: row0 col5 then row1 col4.
  const auto B = fmt::Coo::from_triplets(2, 6, {0, 1}, {5, 4}, {1.0, 1.0});
  (void)A;
  const auto m = core::Bccoo::build(B, {});
  core::ExecConfig ec;
  ec.compress_col_delta = true;
  ec.thread_tile = 2;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.col_delta[1], -1);  // escaped
  EXPECT_EQ(p.decode_col(1, 1, 5), 4);
}

TEST(Plan, OfflineTransposeLayout) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  ec.workgroup_size = 4;
  ec.thread_tile = 4;
  ec.transpose = core::Transpose::kOffline;
  const auto p = core::BccooPlan::build(m, ec);
  // Element e of thread t lives at e*W + t (single workgroup, bw = 1).
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t e = 0; e < 4; ++e) {
      EXPECT_EQ(p.value_rows_t[0][e * 4 + t], p.value_rows[0][t * 4 + e]);
      EXPECT_EQ(p.col_abs_t[e * 4 + t], p.col_abs[t * 4 + e]);
    }
  }
}

TEST(Plan, ValidatesExecConfig) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig ec;
  ec.workgroup_size = 48;  // not a power of two
  EXPECT_THROW(core::BccooPlan::build(m, ec), std::invalid_argument);
  ec.workgroup_size = 64;
  ec.thread_tile = 0;
  EXPECT_THROW(core::BccooPlan::build(m, ec), std::invalid_argument);
  ec.thread_tile = 4;
  ec.shm_tile = 5;
  EXPECT_THROW(core::BccooPlan::build(m, ec), std::invalid_argument);
}

TEST(Plan, FootprintGrowsWithAux) {
  const auto m = core::Bccoo::build(matrix_C(), {});
  core::ExecConfig small;
  small.workgroup_size = 4;
  small.thread_tile = 4;
  core::ExecConfig big;
  big.workgroup_size = 64;
  big.thread_tile = 1;  // many more threads -> more aux entries
  const auto ps = core::BccooPlan::build(m, small);
  const auto pb = core::BccooPlan::build(m, big);
  EXPECT_LT(ps.footprint_bytes(), pb.footprint_bytes());
}

TEST(Plan, EmptyMatrix) {
  const auto A = fmt::Coo::from_triplets(4, 4, {}, {}, {});
  const auto m = core::Bccoo::build(A, {});
  EXPECT_EQ(m.num_blocks, 0u);
  core::ExecConfig ec;
  ec.workgroup_size = 64;
  ec.thread_tile = 2;
  const auto p = core::BccooPlan::build(m, ec);
  EXPECT_EQ(p.num_workgroups, 1);  // one all-padding workgroup
  EXPECT_EQ(p.padded_blocks, 128u);
}

}  // namespace
}  // namespace yaspmv
