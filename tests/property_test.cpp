// Property-based cross-validation: randomized matrices from every generator
// class, swept through every SpMV path in the library — all must agree with
// the serial CSR reference bit-for-bit (within floating-point reassociation
// tolerance).
#include <gtest/gtest.h>

#include "yaspmv/baselines/baselines.hpp"
#include "yaspmv/baselines/clspmv.hpp"
#include "yaspmv/baselines/coo_cusp.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/core/kernels_tree.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/scan/scan.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

struct Case {
  const char* name;
  fmt::Coo matrix;
};

std::vector<Case> property_cases() {
  std::vector<Case> cases;
  cases.push_back({"stencil", gen::stencil2d(17, 23, false, 1)});
  cases.push_back({"fem3", gen::fem_mesh(601, 27, 3, 0.05, 2)});
  cases.push_back({"powerlaw", gen::powerlaw(700, 700, 5.0, 2.2, 0.4, 3)});
  cases.push_back({"wide", gen::wide_rows(9, 4000, 700, 4)});
  cases.push_back({"scattered", gen::random_scattered(900, 777, 4, 5)});
  cases.push_back({"qchem", gen::quantum_chem(500, 30, 6)});
  cases.push_back({"dense", gen::dense(48, 37, 7)});
  return cases;
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, EveryPathMatchesReference) {
  const auto cases = property_cases();
  const auto& c = cases[static_cast<std::size_t>(GetParam())];
  const auto& A = c.matrix;
  const auto csr = fmt::Csr::from_coo(A);
  SplitMix64 rng(0xABCD + static_cast<std::uint64_t>(GetParam()));
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> want(static_cast<std::size_t>(A.rows));
  csr.spmv(x, want);

  auto check = [&](const std::vector<real_t>& y, const std::string& what) {
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-8 * std::max(1.0, std::abs(want[i])))
          << c.name << " / " << what << " row " << i;
    }
  };

  std::vector<real_t> y(static_cast<std::size_t>(A.rows));

  // Every BCCOO/BCCOO+ configuration class.
  for (index_t bw : {1, 2, 4}) {
    for (index_t bh : {1, 3}) {
      for (index_t slices : {1, 4}) {
        if (ceil_div(A.cols, bw) < slices) continue;
        core::FormatConfig fc;
        fc.block_w = bw;
        fc.block_h = bh;
        fc.slices = slices;
        for (auto strat : {core::Strategy::kIntermediateSums,
                           core::Strategy::kResultCache}) {
          core::ExecConfig ec;
          ec.strategy = strat;
          ec.workgroup_size = 64;
          ec.thread_tile = 1 + static_cast<int>(rng.next_below(12));
          ec.compress_col_delta = rng.next_double() < 0.5;
          ec.adjacent_sync = rng.next_double() < 0.7;
          ec.skip_scan_opt = rng.next_double() < 0.7;
          core::SpmvEngine eng(A, fc, ec, sim::gtx680());
          eng.run(x, y);
          check(y, "engine " + fc.to_string() + " " + ec.to_string());
        }
      }
    }
  }

  // Baselines.
  baseline::run_csr_scalar(csr, sim::gtx680(), x, y);
  check(y, "csr-scalar");
  baseline::run_csr_vector(csr, sim::gtx680(), x, y);
  check(y, "csr-vector");
  baseline::run_coo_tree(A, sim::gtx680(), x, y);
  check(y, "coo-tree");
  if (fmt::Ell::padding_ratio(csr) < 16.0) {
    baseline::run_ell(fmt::Ell::from_csr(csr), sim::gtx680(), x, y);
    check(y, "ell");
  }
  baseline::run_sell(fmt::SEll::from_csr(csr, 32), sim::gtx680(), x, y);
  check(y, "sell");
  baseline::run_hyb(fmt::Hyb::from_csr(csr), sim::gtx680(), x, y);
  check(y, "hyb");
  baseline::run_bcsr(fmt::Bcsr::from_coo(A, 2, 2), sim::gtx680(), x, y);
  check(y, "bcsr");
  baseline::run_bell(fmt::Bell::from_coo(A, 2, 2), sim::gtx680(), x, y);
  check(y, "bell");
}

INSTANTIATE_TEST_SUITE_P(Generators, PropertyTest,
                         ::testing::Range(0, 7));

TEST(PropertyTest, BccooTreeStageMatchesReference) {
  // The Figure 14 "BCCOO + tree scan" intermediate configuration.
  for (int seed = 0; seed < 3; ++seed) {
    const auto A = gen::random_scattered(500, 500, 5,
                                         100 + static_cast<std::uint64_t>(seed));
    const auto m = std::make_shared<const core::Bccoo>(
        core::Bccoo::build(A, {}));
    core::ExecConfig ec;
    ec.thread_tile = 1;
    ec.workgroup_size = 64;
    const auto p = core::BccooPlan::build(*m, ec);
    SplitMix64 rng(static_cast<std::uint64_t>(seed));
    std::vector<real_t> x(500), want(500);
    for (auto& v : x) v = rng.next_double(-1, 1);
    fmt::Csr::from_coo(A).spmv(x, want);

    std::vector<real_t> xp(static_cast<std::size_t>(m->block_cols), 0.0);
    std::copy(x.begin(), x.end(), xp.begin());
    std::vector<real_t> res(static_cast<std::size_t>(m->stacked_block_rows),
                            0.0);
    core::WgTails tails;
    core::run_spmv_bccoo_tree(p, sim::gtx680(), xp, res, &tails);
    core::run_carry_kernel(p, sim::gtx680(), tails, res);
    for (std::size_t r = 0; r < 500; ++r) {
      ASSERT_NEAR(res[r], want[r], 1e-9 * std::max(1.0, std::abs(want[r])))
          << "seed " << seed << " row " << r;
    }
  }
}

TEST(PropertyTest, FootprintInvariants) {
  // BCCOO's bit flags can never exceed blocked-COO's integer row indices;
  // the whole format never exceeds plain COO for 1x1 blocks.
  for (int seed = 0; seed < 5; ++seed) {
    const auto A = gen::powerlaw(400, 400, 6.0, 2.3, 0.5,
                                 200 + static_cast<std::uint64_t>(seed));
    const auto m = core::Bccoo::build(A, {});
    EXPECT_EQ(m.num_blocks, A.nnz());  // 1x1 blocks = non-zeros
    const std::size_t bcoo_rows = m.num_blocks * bytes::kIndex;
    EXPECT_LT(m.bit_flags.footprint_bytes(BitFlagWord::kU32), bcoo_rows / 16);
    EXPECT_LT(m.footprint_bytes(true), A.footprint_bytes());
  }
}

TEST(PropertyTest, SegmentSumsEqualRowSums) {
  // Invariant: segmented sums over the bit flags equal per-(block-)row sums.
  for (int seed = 0; seed < 5; ++seed) {
    const auto A = gen::random_scattered(300, 300, 5,
                                         300 + static_cast<std::uint64_t>(seed));
    const auto m = core::Bccoo::build(A, {});
    std::vector<real_t> per_block(m.num_blocks);
    for (std::size_t i = 0; i < m.num_blocks; ++i) {
      per_block[i] = m.value_rows[0][i];
    }
    const auto sums =
        scan::segmented_sums_from_bitflags<real_t>(per_block, m.bit_flags);
    ASSERT_EQ(sums.size(), m.num_segments());
    // Compare with row sums from CSR.
    const auto csr = fmt::Csr::from_coo(A);
    std::size_t seg = 0;
    for (index_t r = 0; r < A.rows; ++r) {
      if (csr.row_len(r) == 0) continue;
      real_t rs = 0;
      for (index_t p = csr.row_ptr[static_cast<std::size_t>(r)];
           p < csr.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        rs += csr.vals[static_cast<std::size_t>(p)];
      }
      ASSERT_NEAR(sums[seg], rs, 1e-9) << "row " << r;
      ++seg;
    }
  }
}

}  // namespace
}  // namespace yaspmv
