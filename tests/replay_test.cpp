// Flight recorder + schedule replay tests.
//
// The contract under test: a pooled-mode run recorded to a journal replays
// deterministically — same y bit for bit when healthy, same failing
// workgroup and same gated event sequence when it hung — and a failing
// schedule minimizes to one that is no longer and still fails.  Plus the
// supporting machinery: journal serialization (checksummed), divergence
// detection when a schedule stops matching reality, and the adjacent-sync
// watchdog's timeout attribution.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/core/resilient.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/journal_io.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/sim/journal.hpp"
#include "yaspmv/sim/replay.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

/// 1024x1024 5-point stencil: every workgroup holds row stops and the
/// adjacent-sync chain spans ~10 workgroups (same matrix as chaos_test).
fmt::Coo test_matrix() { return gen::stencil2d(32, 32, true, 0xABCDEF); }

std::vector<real_t> make_x(index_t cols) {
  SplitMix64 rng(0x11);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

core::ExecConfig pooled(unsigned workers) {
  core::ExecConfig ec;
  ec.workers = workers;
  return ec;
}

/// Freezes the recorder's journal into a RecordedRun for `eng`'s geometry.
sim::RecordedRun capture(const core::SpmvEngine& eng,
                         const core::ExecConfig& ec,
                         const sim::FlightRecorder& rec,
                         const sim::FaultInjector* inj = nullptr) {
  sim::RecordedRun run;
  run.num_workgroups = eng.plan().num_workgroups;
  run.workgroup_size = ec.workgroup_size;
  run.workers = ec.workers;
  if (inj) {
    run.fault = inj->plan();
    run.spin_budget_override = inj->spin_budget_override;
  }
  run.events = rec.journal().snapshot();
  return run;
}

/// The gated main-kernel subsequence of a journal, as comparable steps.
std::vector<sim::ScheduleStep> gated_steps(const sim::RecordedRun& run) {
  return sim::schedule_from_journal(run).steps;
}

struct ReplayResult {
  bool failed = false;
  Status status = Status::kOk;
  std::string what;
  std::int32_t failing_wg = -1;
  std::vector<sim::ScheduleStep> gated;
  std::vector<real_t> y;
};

/// One deterministic re-execution of `sched` with `base`'s fault re-armed.
ReplayResult replay_once(const std::shared_ptr<const core::Bccoo>& m,
                         const core::ExecConfig& ec,
                         const sim::RecordedRun& base,
                         const sim::Schedule& sched,
                         const std::vector<real_t>& x) {
  sim::FaultInjector inj;
  inj.spin_budget_override = base.spin_budget_override;
  if (base.fault.type != sim::FaultType::kNone) inj.arm(base.fault);
  sim::FlightRecorder rec;
  sim::ReplayCoordinator coord(sched);
  rec.set_coordinator(&coord);

  core::SpmvEngine eng(m, ec, sim::gtx680());
  eng.set_fault_injector(&inj);
  eng.set_recorder(&rec);

  ReplayResult out;
  out.y.assign(static_cast<std::size_t>(m->rows), -1e30);  // poison
  try {
    eng.run(x, out.y);
  } catch (const SpmvError& e) {
    out.failed = true;
    out.status = e.code();
    out.what = e.what();
  }
  sim::RecordedRun replayed = base;
  replayed.events = rec.journal().snapshot();
  out.gated = gated_steps(replayed);
  out.failing_wg = sim::first_timeout_event(replayed.events).wg;
  return out;
}

// ---------------------------------------------------------------------------
// Determinism: healthy pooled runs replay to bit-identical y and the exact
// recorded gated event sequence.
// ---------------------------------------------------------------------------

TEST(Replay, PooledRunsReplayBitIdentical) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(4);

  constexpr int kRuns = 10;
  for (int i = 0; i < kRuns; ++i) {
    // Record one pooled run.  Interleavings vary run to run; each replay is
    // checked against its own recording.
    core::SpmvEngine eng(m, ec, sim::gtx680());
    sim::FlightRecorder rec;
    eng.set_recorder(&rec);
    std::vector<real_t> y(static_cast<std::size_t>(a.rows), -1e30);
    eng.run(x, y);
    const sim::RecordedRun run = capture(eng, ec, rec);
    ASSERT_EQ(rec.journal().dropped(), 0u);

    const sim::Schedule sched = sim::schedule_from_journal(run);
    ASSERT_FALSE(sched.steps.empty());
    const ReplayResult r = replay_once(m, ec, run, sched, x);
    ASSERT_FALSE(r.failed) << "run " << i << ": " << r.what;
    // Bit-identical y: per-workgroup arithmetic is deterministic and the
    // carry chain replays in the recorded order.
    ASSERT_EQ(0, std::memcmp(y.data(), r.y.data(),
                             y.size() * sizeof(real_t)))
        << "run " << i;
    // The replayed gated event sequence IS the schedule.
    EXPECT_EQ(r.gated, sched.steps) << "run " << i;
  }
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a pooled SyncTimeout provoked by fault injection
// is captured and replays deterministically across >= 20 replays.
// ---------------------------------------------------------------------------

TEST(Replay, FailingRunReplaysSameWorkgroupTwentyTimes) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(4);

  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kDropPublish;
  plan.target_wg = 3;
  inj.arm(plan);
  inj.spin_budget_override = 10000;

  core::SpmvEngine eng(m, ec, sim::gtx680());
  sim::FlightRecorder rec;
  eng.set_fault_injector(&inj);
  eng.set_recorder(&rec);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  EXPECT_THROW(eng.run(x, y), SyncTimeout);

  const sim::RecordedRun run = capture(eng, ec, rec, &inj);
  const std::int32_t recorded_wg = sim::first_timeout_event(run.events).wg;
  ASSERT_EQ(recorded_wg, 4);  // the waiter on Grp_sum[3]

  const sim::Schedule sched = sim::schedule_from_journal(run);
  std::vector<sim::ScheduleStep> first_gated;
  for (int i = 0; i < 20; ++i) {
    const ReplayResult r = replay_once(m, ec, run, sched, x);
    ASSERT_TRUE(r.failed) << "replay " << i << " did not fail";
    // The original failure must win the race against secondary
    // "replay aborted" unwinds on every single replay.
    ASSERT_EQ(r.status, Status::kSyncTimeout) << "replay " << i << ": "
                                              << r.what;
    ASSERT_EQ(r.failing_wg, recorded_wg) << "replay " << i;
    if (i == 0) {
      first_gated = r.gated;
    } else {
      ASSERT_EQ(r.gated, first_gated) << "replay " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Canned deadlock schedule: three hand-written steps reproduce a hang with
// no fault injector at all — the schedule alone is the repro.
// ---------------------------------------------------------------------------

TEST(Replay, CannedDeadlockScheduleReproducesTimeout) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(2);
  core::SpmvEngine probe(m, ec, sim::gtx680());

  sim::Schedule sched;
  sched.num_workgroups = probe.plan().num_workgroups;
  sched.workgroup_size = ec.workgroup_size;
  sched.workers = ec.workers;
  ASSERT_GE(sched.num_workgroups, 2);
  // Workgroup 1 begins, publishes its own tail, then times out waiting on
  // Grp_sum[0] — whose owner is not scheduled and never runs.
  sched.steps = {
      {sim::EventType::kWgBegin, 1, 0, 0},
      {sim::EventType::kPublish, 1, 0, 0},
      {sim::EventType::kWaitTimeout, 1, 0, 0},
  };

  sim::RecordedRun base;  // no fault, default spin budget
  base.num_workgroups = sched.num_workgroups;
  base.workgroup_size = sched.workgroup_size;
  base.workers = sched.workers;
  const ReplayResult r = replay_once(m, ec, base, sched, x);
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.status, Status::kSyncTimeout);
  EXPECT_EQ(r.failing_wg, 1);
  EXPECT_NE(r.what.find("Grp_sum[0]"), std::string::npos) << r.what;
  EXPECT_NE(r.what.find("never started"), std::string::npos) << r.what;
}

// ---------------------------------------------------------------------------
// Minimization: the delta-debugged schedule is no longer than the original
// and still reproduces the same failing workgroup.
// ---------------------------------------------------------------------------

TEST(Replay, MinimizerShrinksFailingSchedule) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(4);

  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kDropPublish;
  plan.target_wg = 2;
  inj.arm(plan);
  inj.spin_budget_override = 10000;

  core::SpmvEngine eng(m, ec, sim::gtx680());
  sim::FlightRecorder rec;
  eng.set_fault_injector(&inj);
  eng.set_recorder(&rec);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  EXPECT_THROW(eng.run(x, y), SyncTimeout);
  const sim::RecordedRun run = capture(eng, ec, rec, &inj);
  const std::int32_t failing_wg = sim::first_timeout_event(run.events).wg;
  ASSERT_EQ(failing_wg, 3);

  const sim::Schedule sched = sim::schedule_from_journal(run);
  const auto oracle = [&](const sim::Schedule& cand) {
    const ReplayResult o = replay_once(m, ec, run, cand, x);
    return o.failed && o.status == Status::kSyncTimeout &&
           o.failing_wg == failing_wg;
  };
  ASSERT_TRUE(oracle(sched)) << "original schedule must reproduce";

  sim::MinimizeStats st;
  const sim::Schedule min = sim::minimize_schedule(sched, oracle, &st);
  EXPECT_LE(min.steps.size(), sched.steps.size());
  EXPECT_TRUE(oracle(min)) << "minimized schedule must still reproduce";
  EXPECT_GT(st.candidates, 0);
  // The stencil chain gives every workgroup its own publish; everything but
  // the failing waiter's steps should delta away.
  EXPECT_LE(min.steps.size(), 4u);
}

// ---------------------------------------------------------------------------
// Divergence: a schedule that no longer matches reality is classified as
// kScheduleDiverged, never silently reinterpreted.
// ---------------------------------------------------------------------------

TEST(Replay, DivergesWhenFaultPlanChanged) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(4);

  // Record a healthy run...
  core::SpmvEngine eng(m, ec, sim::gtx680());
  sim::FlightRecorder rec;
  eng.set_recorder(&rec);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  eng.run(x, y);
  sim::RecordedRun run = capture(eng, ec, rec);

  // ...then replay it with a drop-publish fault armed: the recorded
  // kPublish of workgroup 0 cannot happen anymore.
  run.fault.type = sim::FaultType::kDropPublish;
  run.fault.target_wg = 0;
  run.spin_budget_override = 10000;
  const sim::Schedule sched = sim::schedule_from_journal(run);
  const ReplayResult r = replay_once(m, ec, run, sched, x);
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.status, Status::kScheduleDiverged) << r.what;
  EXPECT_NE(r.what.find("fault plan"), std::string::npos) << r.what;
}

TEST(Replay, DivergesOnGeometryMismatch) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(2);

  core::SpmvEngine eng(m, ec, sim::gtx680());
  sim::FlightRecorder rec;
  eng.set_recorder(&rec);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  eng.run(x, y);
  sim::RecordedRun run = capture(eng, ec, rec);

  sim::Schedule sched = sim::schedule_from_journal(run);
  sched.num_workgroups += 1;  // recorded against a different matrix/config
  const ReplayResult r = replay_once(m, ec, run, sched, x);
  ASSERT_TRUE(r.failed);
  EXPECT_EQ(r.status, Status::kScheduleDiverged) << r.what;
  EXPECT_NE(r.what.find("geometry"), std::string::npos) << r.what;
}

// ---------------------------------------------------------------------------
// Watchdog: with a recorder attached, a dead predecessor is detected from
// its progress state (no spin-budget override needed) and the timeout names
// the owner's state and the suppressing fault.
// ---------------------------------------------------------------------------

TEST(Replay, WatchdogAttributesTimeoutWithoutSpinBudgetOverride) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  auto m = std::make_shared<const core::Bccoo>(core::Bccoo::build(a, {}));
  const auto ec = pooled(4);

  sim::FaultInjector inj;  // note: no spin_budget_override — the watchdog
  sim::FaultPlan plan;     // must fire off the owner's done-state instead
  plan.type = sim::FaultType::kDropPublish;
  plan.target_wg = 0;
  inj.arm(plan);

  core::SpmvEngine eng(m, ec, sim::gtx680());
  sim::FlightRecorder rec;
  eng.set_fault_injector(&inj);
  eng.set_recorder(&rec);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  try {
    eng.run(x, y);
    FAIL() << "expected SyncTimeout";
  } catch (const SyncTimeout& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("workgroup 1 waiting on unpublished Grp_sum[0]"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("owner workgroup 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("suppressed by an armed drop-publish fault"),
              std::string::npos)
        << msg;
  }
  // The journal captured the hang: a wait-timeout of workgroup 1 on entry 0.
  const auto ev = sim::first_timeout_event(rec.journal().snapshot());
  EXPECT_EQ(ev.wg, 1);
  EXPECT_EQ(ev.aux, 0);
}

// ---------------------------------------------------------------------------
// Journal serialization: round trip, and corruption is detected.
// ---------------------------------------------------------------------------

sim::RecordedRun sample_run() {
  sim::RecordedRun run;
  run.num_workgroups = 7;
  run.workgroup_size = 64;
  run.workers = 3;
  run.fault.type = sim::FaultType::kStallPublish;
  run.fault.target_wg = 5;
  run.fault.launch = sim::LaunchKind::kMain;
  run.fault.magnitude = 2.5;
  run.spin_budget_override = 12345;
  for (std::uint64_t i = 0; i < 20; ++i) {
    sim::Event e;
    e.seq = i;
    e.type = static_cast<sim::EventType>(i % 12);
    e.kind = static_cast<std::uint8_t>(i % 3);
    e.worker = static_cast<std::uint16_t>(i % 4);
    e.wg = static_cast<std::int32_t>(i) - 1;
    e.aux = static_cast<std::int32_t>(i * 7);
    run.events.push_back(e);
  }
  return run;
}

TEST(JournalIo, RoundTrip) {
  const sim::RecordedRun run = sample_run();
  std::stringstream ss;
  io::save_journal(ss, run);
  const sim::RecordedRun back = io::load_journal(ss);
  EXPECT_EQ(back.num_workgroups, run.num_workgroups);
  EXPECT_EQ(back.workgroup_size, run.workgroup_size);
  EXPECT_EQ(back.workers, run.workers);
  EXPECT_EQ(back.fault.type, run.fault.type);
  EXPECT_EQ(back.fault.target_wg, run.fault.target_wg);
  EXPECT_EQ(back.fault.launch, run.fault.launch);
  EXPECT_EQ(back.fault.magnitude, run.fault.magnitude);
  EXPECT_EQ(back.spin_budget_override, run.spin_budget_override);
  ASSERT_EQ(back.events.size(), run.events.size());
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    EXPECT_EQ(back.events[i], run.events[i]) << "event " << i;
  }
}

TEST(JournalIo, DetectsCorruptionTruncationAndBadMagic) {
  const sim::RecordedRun run = sample_run();
  std::stringstream ss;
  io::save_journal(ss, run);
  const std::string bytes = ss.str();

  // Flip one payload byte (past the 8-byte header): checksum mismatch.
  {
    std::string bad = bytes;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
    std::stringstream in(bad);
    EXPECT_THROW(io::load_journal(in), DataCorruption);
  }
  // Truncate: IoError, not garbage events.
  {
    std::stringstream in(bytes.substr(0, bytes.size() - 12));
    EXPECT_THROW(io::load_journal(in), IoError);
  }
  // Wrong magic: FormatInvalid.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    std::stringstream in(bad);
    EXPECT_THROW(io::load_journal(in), FormatInvalid);
  }
}

TEST(JournalIo, MinimizedScheduleSerializesThroughSameContainer) {
  sim::Schedule sched;
  sched.num_workgroups = 4;
  sched.workgroup_size = 64;
  sched.workers = 2;
  sched.steps = {
      {sim::EventType::kWgBegin, 1, 0, 1},
      {sim::EventType::kPublish, 1, 0, 1},
      {sim::EventType::kWaitTimeout, 1, 0, 1},
  };
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kDropPublish;
  const sim::RecordedRun run =
      sim::recorded_run_from_schedule(sched, plan, 777);
  std::stringstream ss;
  io::save_journal(ss, run);
  const sim::RecordedRun back = io::load_journal(ss);
  EXPECT_EQ(sim::schedule_from_journal(back), sched);
  EXPECT_EQ(back.spin_budget_override, 777u);
}

// ---------------------------------------------------------------------------
// ResilientEngine integration: every failed attempt dumps its journal.
// ---------------------------------------------------------------------------

TEST(Replay, ResilientEngineDumpsJournalPerFailedAttempt) {
  const auto a = test_matrix();
  const auto x = make_x(a.cols);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));

  core::ResilientOptions opt;
  opt.verify = true;
  opt.sample_rows = a.rows;
  opt.journal_prefix = testing::TempDir() + "yaspmv_replay_test.journal";
  core::ResilientEngine eng(a, {}, pooled(4), sim::gtx680(), opt);

  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kDropPublish;
  plan.target_wg = 0;
  inj.arm(plan);
  inj.spin_budget_override = 10000;
  eng.set_fault_injector(&inj);

  const auto r = eng.run(x, y);
  EXPECT_TRUE(r.recovered);
  ASSERT_FALSE(r.faults.empty());
  EXPECT_EQ(r.faults[0].status, Status::kSyncTimeout);
  ASSERT_FALSE(r.faults[0].journal_file.empty());
  EXPECT_TRUE(eng.has_last_failure());

  // The dump is a loadable journal holding the hang and the armed fault.
  const sim::RecordedRun dump =
      io::load_journal_file(r.faults[0].journal_file);
  EXPECT_EQ(dump.fault.type, sim::FaultType::kDropPublish);
  EXPECT_EQ(dump.spin_budget_override, 10000u);
  EXPECT_EQ(sim::first_timeout_event(dump.events).wg, 1);
  EXPECT_FALSE(sim::schedule_from_journal(dump).steps.empty());
}

}  // namespace
}  // namespace yaspmv
