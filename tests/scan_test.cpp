#include "yaspmv/scan/scan.hpp"

#include <gtest/gtest.h>

#include "yaspmv/scan/segscan_tree.hpp"
#include "yaspmv/scan/wg_scan.hpp"
#include "yaspmv/sim/dispatch.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

// The paper's Figure 7 worked example: bit flags from Figure 6(a) plus the
// final padding row stop, inputs and expected inclusive segmented scan.
const std::vector<double> kFig7Input = {3, 2, 0, 2, 1, 0, 4, 2,
                                        4, 3, 2, 2, 0, 1, 3, 1};
const std::vector<int> kFig7BitFlags = {1, 1, 1, 1, 0, 1, 0, 1,
                                        1, 0, 1, 1, 1, 1, 1, 0};
const std::vector<double> kFig7Result = {3, 5, 5, 7, 8, 0, 4, 2,
                                         6, 9, 2, 4, 4, 5, 8, 9};

BitArray make_bits(const std::vector<int>& v) {
  BitArray b;
  for (int x : v) b.push_back(x != 0);
  return b;
}

TEST(Scan, InclusiveExclusive) {
  const std::vector<double> in = {1, 2, 3, 4};
  std::vector<double> out(4);
  scan::inclusive_scan<double>(in, out);
  EXPECT_EQ(out, (std::vector<double>{1, 3, 6, 10}));
  scan::exclusive_scan<double>(in, out);
  EXPECT_EQ(out, (std::vector<double>{0, 1, 3, 6}));
}

TEST(Scan, ExclusiveScanAliasesInput) {
  std::vector<double> v = {5, 7, 9};
  scan::exclusive_scan<double>(v, v);
  EXPECT_EQ(v, (std::vector<double>{0, 5, 12}));
}

TEST(Scan, Figure7SegmentedScan) {
  const BitArray bits = make_bits(kFig7BitFlags);
  const auto start = scan::start_flags_from_bitflags(bits);
  std::vector<double> out(kFig7Input.size());
  scan::segmented_inclusive_scan<double>(kFig7Input, start, out);
  EXPECT_EQ(out, kFig7Result);
}

TEST(Scan, Figure7SegmentSums) {
  const BitArray bits = make_bits(kFig7BitFlags);
  const auto sums =
      scan::segmented_sums_from_bitflags<double>(kFig7Input, bits);
  // Underscored values in Figure 7: 8, 4, 9, 9.
  EXPECT_EQ(sums, (std::vector<double>{8, 4, 9, 9}));
}

TEST(Scan, StartFlagsFromBitFlags) {
  const BitArray bits = make_bits({1, 0, 1, 1, 0, 0});
  const auto start = scan::start_flags_from_bitflags(bits);
  EXPECT_EQ(start, (std::vector<std::uint8_t>{1, 0, 1, 0, 0, 1}));
}

TEST(Scan, RowIndicesFromBitFlagsAreLossless) {
  // Figure 6(a)'s bit flags reconstruct the row indices of matrix C (Eq. 2).
  const BitArray bits = make_bits({1, 1, 1, 1, 0, 1, 0, 1, 1, 0, 1, 1, 1, 1,
                                   1, 0});
  const auto rows = scan::row_indices_from_bitflags(bits);
  const std::vector<index_t> expect = {0, 0, 0, 0, 0, 1, 1, 2,
                                       2, 2, 3, 3, 3, 3, 3, 3};
  EXPECT_EQ(rows, expect);
}

TEST(Scan, TrailingOpenSegmentIsDropped) {
  const BitArray bits = make_bits({1, 0, 1, 1});  // padding-style tail
  const std::vector<double> in = {1, 2, 3, 4};
  const auto sums = scan::segmented_sums_from_bitflags<double>(in, bits);
  EXPECT_EQ(sums, (std::vector<double>{3}));
}

// --- workgroup-level scans on the simulator --------------------------------

class WgScanTest : public ::testing::TestWithParam<int> {};

TEST_P(WgScanTest, MatchesSerialReference) {
  const int W = GetParam();
  SplitMix64 rng(1234 + static_cast<std::uint64_t>(W));
  for (int h = 1; h <= 3; ++h) {
    std::vector<double> vals(static_cast<std::size_t>(W * h));
    std::vector<std::uint8_t> starts(static_cast<std::size_t>(W));
    for (auto& v : vals) v = rng.next_double(-2, 2);
    for (auto& s : starts) s = rng.next_double() < 0.3 ? 1 : 0;
    starts[0] = 1;

    // Serial reference per lane.
    std::vector<double> expect(vals);
    for (int k = 0; k < h; ++k) {
      double acc = 0;
      for (int t = 0; t < W; ++t) {
        if (starts[static_cast<std::size_t>(t)]) acc = 0;
        acc += vals[static_cast<std::size_t>(t * h + k)];
        expect[static_cast<std::size_t>(t * h + k)] = acc;
      }
    }

    sim::LaunchConfig lc;
    lc.num_workgroups = 1;
    lc.workgroup_size = W;
    std::vector<double> got(vals);
    std::vector<std::uint8_t> gf(starts);
    sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
      auto s = wg.shared_array<double>(vals.size(), bytes::kValue);
      auto tmp = wg.shared_array<double>(vals.size(), bytes::kValue);
      auto f = wg.shared_array<std::uint8_t>(starts.size(), 1);
      auto ftmp = wg.shared_array<std::uint8_t>(starts.size(), 1);
      std::copy(got.begin(), got.end(), s.begin());
      std::copy(gf.begin(), gf.end(), f.begin());
      scan::wg_segmented_scan_hvec(wg, s, f, tmp, ftmp, h);
      std::copy(s.begin(), s.end(), got.begin());
    });
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-12) << "W=" << W << " h=" << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WgScanTest,
                         ::testing::Values(2, 4, 8, 64, 128, 256));

class TreeScanTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeScanTest, MatchesSerialReference) {
  const int W = GetParam();
  SplitMix64 rng(99 + static_cast<std::uint64_t>(W));
  std::vector<double> vals(static_cast<std::size_t>(W));
  std::vector<std::uint8_t> heads(static_cast<std::size_t>(W));
  for (auto& v : vals) v = rng.next_double(-1, 1);
  for (auto& s : heads) s = rng.next_double() < 0.25 ? 1 : 0;
  heads[0] = 1;

  std::vector<double> expect(vals);
  {
    double acc = 0;
    for (int t = 0; t < W; ++t) {
      if (heads[static_cast<std::size_t>(t)]) acc = 0;
      acc += vals[static_cast<std::size_t>(t)];
      expect[static_cast<std::size_t>(t)] = acc;
    }
  }

  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = W;
  std::vector<double> got(vals);
  sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    auto x = wg.shared_array<double>(vals.size(), bytes::kValue);
    auto hd = wg.shared_array<std::uint8_t>(heads.size(), 1);
    auto wf = wg.shared_array<std::uint8_t>(heads.size(), 1);
    auto ic = wg.shared_array<double>(vals.size(), bytes::kValue);
    std::copy(got.begin(), got.end(), x.begin());
    std::copy(heads.begin(), heads.end(), hd.begin());
    scan::wg_tree_segscan_inclusive(wg, x, hd, wf, ic);
    std::copy(x.begin(), x.end(), got.begin());
  });
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-12) << "i=" << i << " W=" << W;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeScanTest,
                         ::testing::Values(2, 4, 8, 32, 64, 256));

TEST(TreeScan, RejectsNonPowerOfTwo) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = 48;
  EXPECT_THROW(
      sim::launch(sim::gtx680(), lc,
                  [&](sim::WorkgroupCtx& wg) {
                    auto x = wg.shared_array<double>(48, bytes::kValue);
                    auto hd = wg.shared_array<std::uint8_t>(48, 1);
                    auto wf = wg.shared_array<std::uint8_t>(48, 1);
                    auto ic = wg.shared_array<double>(48, bytes::kValue);
                    scan::wg_tree_segscan_inclusive(wg, x, hd, wf, ic);
                  }),
      sim::SimError);
}

TEST(TreeScan, ChargesIdleLanes) {
  // The tree scan's divergence counters must report serialized > ideal work
  // (this is the inefficiency Figure 14's first stage pays for).
  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = 64;
  auto st = sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    auto x = wg.shared_array<double>(64, bytes::kValue);
    auto hd = wg.shared_array<std::uint8_t>(64, 1);
    auto wf = wg.shared_array<std::uint8_t>(64, 1);
    auto ic = wg.shared_array<double>(64, bytes::kValue);
    wg.phase([&](int t) {
      x[static_cast<std::size_t>(t)] = 1.0;
      hd[static_cast<std::size_t>(t)] = t == 0 ? 1 : 0;
    });
    scan::wg_tree_segscan_inclusive(wg, x, hd, wf, ic);
  });
  EXPECT_GT(st.serialized_lanes, st.ideal_lanes);
  EXPECT_GT(st.divergence_factor(), 1.5);
}

}  // namespace
}  // namespace yaspmv
