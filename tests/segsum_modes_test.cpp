// Segmented-sum mode tests: the speculative carry fix-up must produce
// bitwise-identical results whether chunks are claimed in order
// (kSpeculativeOrdered) or opportunistically (kSpeculative) — the carry
// combine tree is a pure function of the chunk grid, not of the claim
// schedule — across thread counts, SIMD dispatch levels, column-stream
// encodings, blocked formats, SpMM and the semiring backend.  Also covers
// WorkPool::run_unordered directly (exactly-once coverage, worker-id cap,
// exception poisoning, nested-submit degrade — the serve-executor deadlock
// regression) and checks the speculative path against the legacy serial
// fold and the CSR reference with a scaled tolerance.  Labeled `tsan` so
// the sanitizer script's TSan pass exercises the real interleavings.
#include "yaspmv/cpu/segfix.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "yaspmv/cpu/semiring.hpp"
#include "yaspmv/cpu/simd.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv {
namespace {

using cpu::SegSumMode;
using cpu::simd::Level;

/// RAII guard: force a dispatch level for one test, restore after.
struct LevelGuard {
  Level saved;
  explicit LevelGuard(Level l) : saved(cpu::simd::active()) {
    cpu::simd::set_level(l);
  }
  ~LevelGuard() { cpu::simd::set_level(saved); }
};

std::shared_ptr<const core::Bccoo> build(const fmt::Coo& A,
                                         core::FormatConfig fc = {}) {
  return std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc));
}

std::vector<real_t> seeded(std::size_t n, std::uint64_t seed) {
  std::vector<real_t> v(n);
  SplitMix64 rng(seed);
  for (auto& x : v) x = rng.next_double(-1, 1);
  return v;
}

bool bitwise_equal(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

std::vector<Level> levels_to_test() {
  std::vector<Level> ls{Level::kPortable};
  if (cpu::simd::cpu_has_avx2()) ls.push_back(Level::kAvx2);
  if (cpu::simd::cpu_has_avx512()) ls.push_back(Level::kAvx512);
  return ls;
}

/// Test matrices that stress the fix-up: a long dense row whose segment
/// spans every chunk, plus the generator suite's usual shapes.
std::vector<fmt::Coo> fixture_matrices() {
  std::vector<fmt::Coo> ms;
  ms.push_back(gen::stencil2d(24, 24, false, 1));
  ms.push_back(gen::powerlaw(700, 700, 5, 2.2, 0.4, 2));
  ms.push_back(gen::fem_mesh(500, 30, 3, 0.05, 3));
  {
    // One dense row: every chunk's first (and only) segment is open, so
    // the carry chain crosses the entire chunk grid.
    std::vector<index_t> ri(5000, 0), ci(5000);
    std::vector<real_t> v(5000);
    SplitMix64 rng(11);
    for (index_t i = 0; i < 5000; ++i) {
      ci[static_cast<std::size_t>(i)] = i;
      v[static_cast<std::size_t>(i)] = rng.next_double(-1, 1);
    }
    ms.push_back(fmt::Coo::from_triplets(1, 5000, std::move(ri), std::move(ci),
                                         std::move(v)));
  }
  return ms;
}

// ---------------------------------------------------------------------------
// Bitwise identity: unordered claims == ordered claims, per (threads, level).

TEST(SegSumModes, UnorderedMatchesOrderedBitwise) {
  const auto mats = fixture_matrices();
  for (Level lvl : levels_to_test()) {
    LevelGuard g(lvl);
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
      for (std::size_t mi = 0; mi < mats.size(); ++mi) {
        const auto& A = mats[mi];
        const auto x = seeded(static_cast<std::size_t>(A.cols), 42);
        std::vector<real_t> ord(static_cast<std::size_t>(A.rows)),
            unord(static_cast<std::size_t>(A.rows));
        cpu::CpuSpmv e_ord(build(A), threads, core::ColStream::kAuto,
                           SegSumMode::kSpeculativeOrdered);
        cpu::CpuSpmv e_un(build(A), threads, core::ColStream::kAuto,
                          SegSumMode::kSpeculative);
        e_ord.spmv(x, ord);
        e_un.spmv(x, unord);
        ASSERT_TRUE(bitwise_equal(ord, unord))
            << "matrix " << mi << " threads=" << threads
            << " level=" << to_string(lvl);
      }
    }
  }
}

TEST(SegSumModes, UnorderedMatchesOrderedAcrossColStreams) {
  const auto A = gen::powerlaw(900, 900, 6, 2.1, 0.3, 5);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 7);
  for (core::ColStream cs :
       {core::ColStream::kRaw, core::ColStream::kShort,
        core::ColStream::kDelta}) {
    std::vector<real_t> ord(static_cast<std::size_t>(A.rows)),
        unord(static_cast<std::size_t>(A.rows));
    cpu::CpuSpmv e_ord(build(A), 8, cs, SegSumMode::kSpeculativeOrdered);
    cpu::CpuSpmv e_un(build(A), 8, cs, SegSumMode::kSpeculative);
    e_ord.spmv(x, ord);
    e_un.spmv(x, unord);
    ASSERT_TRUE(bitwise_equal(ord, unord)) << to_string(cs);
  }
}

TEST(SegSumModes, UnorderedMatchesOrderedBlockedAndSliced) {
  const auto A = gen::fem_mesh(600, 30, 3, 0.05, 4);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 9);
  core::FormatConfig blocked;
  blocked.block_w = 2;
  blocked.block_h = 2;
  core::FormatConfig sliced;
  sliced.slices = 4;
  for (const auto& fc : {blocked, sliced}) {
    for (unsigned threads : {2u, 8u}) {
      std::vector<real_t> ord(static_cast<std::size_t>(A.rows)),
          unord(static_cast<std::size_t>(A.rows));
      cpu::CpuSpmv e_ord(build(A, fc), threads, core::ColStream::kAuto,
                         SegSumMode::kSpeculativeOrdered);
      cpu::CpuSpmv e_un(build(A, fc), threads, core::ColStream::kAuto,
                        SegSumMode::kSpeculative);
      e_ord.spmv(x, ord);
      e_un.spmv(x, unord);
      ASSERT_TRUE(bitwise_equal(ord, unord))
          << "block_w=" << fc.block_w << " slices=" << fc.slices
          << " threads=" << threads;
    }
  }
}

TEST(SegSumModes, SpmmUnorderedMatchesOrderedBitwise) {
  const auto A = gen::powerlaw(500, 500, 6, 2.2, 0.4, 3);
  const index_t k = 4;
  const auto X =
      seeded(static_cast<std::size_t>(A.cols) * static_cast<std::size_t>(k), 5);
  for (unsigned threads : {1u, 4u, 16u}) {
    std::vector<real_t> ord(
        static_cast<std::size_t>(A.rows) * static_cast<std::size_t>(k)),
        unord(ord.size());
    cpu::CpuSpmm e_ord(build(A), threads, core::ColStream::kAuto,
                       SegSumMode::kSpeculativeOrdered);
    cpu::CpuSpmm e_un(build(A), threads, core::ColStream::kAuto,
                      SegSumMode::kSpeculative);
    e_ord.spmm(X, ord, k);
    e_un.spmm(X, unord, k);
    ASSERT_TRUE(bitwise_equal(ord, unord)) << "threads=" << threads;
  }
}

TEST(SegSumModes, SemiringUnorderedMatchesOrderedBitwise) {
  const auto A = gen::random_scattered(600, 600, 5, 13);
  const auto f = core::Bccoo::build(A, {});
  const auto x = seeded(static_cast<std::size_t>(A.cols), 3);
  for (unsigned threads : {1u, 4u, 8u}) {
    std::vector<real_t> ord(static_cast<std::size_t>(A.rows)),
        unord(static_cast<std::size_t>(A.rows));
    cpu::spmv_semiring<cpu::PlusTimes>(f, x, ord, threads,
                                       SegSumMode::kSpeculativeOrdered);
    cpu::spmv_semiring<cpu::PlusTimes>(f, x, unord, threads,
                                       SegSumMode::kSpeculative);
    ASSERT_TRUE(bitwise_equal(ord, unord)) << "threads=" << threads;
  }
}

TEST(SegSumModes, SemiringMinPlusUnorderedMatchesOrdered) {
  // Non-arithmetic semiring: min-plus is fully associative, so the
  // speculative tree must agree with the serial fold *exactly* too.
  const auto A = gen::stencil2d(20, 20, false, 1);
  auto g = core::Bccoo::build(A, {});
  std::vector<real_t> d(static_cast<std::size_t>(A.rows),
                        std::numeric_limits<real_t>::infinity());
  d[0] = 0;
  std::vector<real_t> ord(d.size()), unord(d.size()), serial(d.size());
  cpu::spmv_semiring<cpu::MinPlus>(g, d, ord, 8,
                                   SegSumMode::kSpeculativeOrdered);
  cpu::spmv_semiring<cpu::MinPlus>(g, d, unord, 8, SegSumMode::kSpeculative);
  cpu::spmv_semiring<cpu::MinPlus>(g, d, serial, 8, SegSumMode::kSerialFold);
  ASSERT_TRUE(bitwise_equal(ord, unord));
  ASSERT_TRUE(bitwise_equal(ord, serial));
}

// ---------------------------------------------------------------------------
// Reproducibility and numerical agreement with the legacy paths.

TEST(SegSumModes, RunToRunBitwiseReproducible) {
  const auto A = gen::powerlaw(800, 800, 6, 2.2, 0.4, 17);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 21);
  cpu::CpuSpmv eng(build(A), 16, core::ColStream::kAuto,
                   SegSumMode::kSpeculative);
  std::vector<real_t> first(static_cast<std::size_t>(A.rows));
  eng.spmv(x, first);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<real_t> again(first.size());
    eng.spmv(x, again);
    ASSERT_TRUE(bitwise_equal(first, again)) << "rep " << rep;
  }
}

TEST(SegSumModes, SpeculativeMatchesSerialFoldAndCsrWithinTolerance) {
  // The tree combine reassociates the carry sum, so bits may differ from
  // the serial fold — but both must stay within a scaled tolerance of the
  // CSR reference and of each other.
  for (const auto& A : fixture_matrices()) {
    const auto x = seeded(static_cast<std::size_t>(A.cols), 33);
    std::vector<real_t> want(static_cast<std::size_t>(A.rows)),
        spec(want.size()), serial(want.size());
    fmt::Csr::from_coo(A).spmv(x, want);
    cpu::CpuSpmv(build(A), 8, core::ColStream::kAuto, SegSumMode::kSpeculative)
        .spmv(x, spec);
    cpu::CpuSpmv(build(A), 8, core::ColStream::kAuto, SegSumMode::kSerialFold)
        .spmv(x, serial);
    for (std::size_t i = 0; i < want.size(); ++i) {
      const double scale = std::max(1.0, std::abs(want[i]));
      ASSERT_NEAR(spec[i], want[i], 1e-9 * scale) << "row " << i;
      ASSERT_NEAR(spec[i], serial[i], 1e-9 * scale) << "row " << i;
    }
  }
}

TEST(SegSumModes, EnvOverrideSelectsMode) {
  EXPECT_EQ(cpu::to_string(SegSumMode::kSpeculative),
            std::string("speculative"));
  EXPECT_EQ(cpu::to_string(SegSumMode::kSpeculativeOrdered),
            std::string("ordered"));
  EXPECT_EQ(cpu::to_string(SegSumMode::kSerialFold), std::string("serial"));
}

// ---------------------------------------------------------------------------
// WorkPool::run_unordered direct coverage.

TEST(RunUnordered, CoversEveryIndexExactlyOnce) {
  WorkPool pool(4);
  for (unsigned workers : {1u, 2u, 4u, 7u}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                          std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      std::atomic<unsigned> max_worker{0};
      pool.run_unordered(n, workers, [&](unsigned w, std::size_t i) {
        hits[i].fetch_add(1);
        unsigned cur = max_worker.load();
        while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " n=" << n
                                     << " index " << i;
      }
      EXPECT_LT(max_worker.load(), workers);
    }
  }
}

TEST(RunUnordered, BatchesAreContiguousPerWorker) {
  // Workers claim contiguous index ranges; within one worker the visited
  // indices must be a union of ascending runs (each run one batch).
  WorkPool pool(4);
  constexpr std::size_t kN = 777;
  std::vector<std::vector<std::size_t>> seen(8);
  pool.run_unordered(kN, 4, [&](unsigned w, std::size_t i) {
    seen[w].push_back(i);
  });
  std::size_t total = 0;
  for (const auto& s : seen) {
    for (std::size_t j = 1; j < s.size(); ++j) {
      ASSERT_LT(s[j - 1], s[j]);  // batches are claimed from a monotone cursor
    }
    total += s.size();
  }
  EXPECT_EQ(total, kN);
}

TEST(RunUnordered, ExceptionPoisonsAndRethrows) {
  WorkPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_unordered(200, 4,
                         [&](unsigned, std::size_t i) {
                           ran.fetch_add(1);
                           if (i == 17) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The pool must stay usable after a poisoned launch.
  std::atomic<int> ok{0};
  pool.run_unordered(64, 4, [&](unsigned, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 64);
}

TEST(RunUnordered, NestedSubmitFromWorkerDegradesInline) {
  // Regression twin of the serve-executor deadlock: an apply that runs on
  // an executor thread submits to the shared pool from inside a job.  The
  // nested launch must degrade to inline execution instead of waiting for
  // workers that are already busy running the outer job.
  WorkPool pool(4);
  std::atomic<int> outer{0}, inner{0};
  pool.run_unordered(8, 4, [&](unsigned, std::size_t) {
    outer.fetch_add(1);
    WorkPool::shared().run_unordered(16, 4, [&](unsigned, std::size_t) {
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(RunUnordered, SubmitFromForeignThreadsConcurrently) {
  // Two plain std::threads (serve executors in disguise) drive unordered
  // launches on the shared pool at the same time; one degrades via the
  // submit try-lock, both must complete every index.
  std::atomic<int> a{0}, b{0};
  std::thread t1([&] {
    for (int r = 0; r < 20; ++r) {
      parallel_for_unordered(64, 4,
                             [&](unsigned, std::size_t) { a.fetch_add(1); });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 20; ++r) {
      parallel_for_unordered(64, 4,
                             [&](unsigned, std::size_t) { b.fetch_add(1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 20 * 64);
  EXPECT_EQ(b.load(), 20 * 64);
}

}  // namespace
}  // namespace yaspmv
