// Semiring SpMV tests: plus-times equals the standard kernel, min-plus
// performs shortest-path relaxation, or-and performs BFS, and the chunked
// parallel carry logic holds for every semiring.
#include "yaspmv/cpu/semiring.hpp"

#include <gtest/gtest.h>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

core::Bccoo scalar_bccoo(const fmt::Coo& A) {
  return core::Bccoo::build(A, {});
}

TEST(Semiring, PlusTimesMatchesStandardSpmv) {
  const auto A = gen::random_scattered(400, 400, 5, 1);
  const auto m = scalar_bccoo(A);
  SplitMix64 rng(2);
  std::vector<real_t> x(400), want(400), got(400);
  for (auto& v : x) v = rng.next_double(-1, 1);
  fmt::Csr::from_coo(A).spmv(x, want);
  for (unsigned t : {1u, 4u}) {
    cpu::spmv_semiring<cpu::PlusTimes>(m, x, got, t);
    for (std::size_t i = 0; i < 400; ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-9 * std::max(1.0, std::abs(want[i])))
          << "threads=" << t;
    }
  }
}

TEST(Semiring, MinPlusSingleRelaxation) {
  // Path graph 0 -> 1 -> 2 with weights 5, 7; relaxing from d=[0,inf,inf]
  // over A^T (edge u->v stored at (v,u)) must set d'[1] = 5 only.
  const auto At = fmt::Coo::from_triplets(3, 3, {1, 2}, {0, 1}, {5.0, 7.0});
  const auto m = scalar_bccoo(At);
  const real_t inf = std::numeric_limits<real_t>::infinity();
  std::vector<real_t> d = {0.0, inf, inf}, nd(3);
  cpu::spmv_semiring<cpu::MinPlus>(m, d, nd);
  EXPECT_EQ(nd[0], inf);  // nothing points at 0
  EXPECT_EQ(nd[1], 5.0);
  EXPECT_EQ(nd[2], inf);  // d[1] was inf
  // Second relaxation reaches node 2.
  for (int i = 0; i < 3; ++i) d[static_cast<std::size_t>(i)] =
      std::min(d[static_cast<std::size_t>(i)], nd[static_cast<std::size_t>(i)]);
  cpu::spmv_semiring<cpu::MinPlus>(m, d, nd);
  EXPECT_EQ(nd[2], 12.0);
}

TEST(Semiring, MinPlusBellmanFordMatchesDijkstraReference) {
  // Random positive-weight digraph; iterate relaxations to a fixpoint and
  // compare against a serial Bellman-Ford on the edge list.
  SplitMix64 rng(3);
  const index_t n = 200;
  std::vector<index_t> src, dst;
  std::vector<real_t> w;
  for (index_t u = 0; u < n; ++u) {
    for (int k = 0; k < 4; ++k) {
      const auto v = static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (v == u) continue;
      src.push_back(u);
      dst.push_back(v);
      w.push_back(rng.next_double(0.1, 2.0));
    }
  }
  // Build A^T first; from_triplets sums duplicate edges, so the reference
  // Bellman-Ford must run on the *deduplicated* edge list of the matrix.
  const auto At = fmt::Coo::from_triplets(
      n, n, std::vector<index_t>(dst), std::vector<index_t>(src),
      std::vector<real_t>(w));
  const real_t inf = std::numeric_limits<real_t>::infinity();
  std::vector<real_t> ref(static_cast<std::size_t>(n), inf);
  ref[0] = 0.0;
  for (index_t it = 0; it < n; ++it) {
    bool changed = false;
    for (std::size_t e = 0; e < At.nnz(); ++e) {
      // Edge src=col -> dst=row with weight val.
      const double cand = ref[static_cast<std::size_t>(At.col_idx[e])] +
                          At.vals[e];
      if (cand < ref[static_cast<std::size_t>(At.row_idx[e])]) {
        ref[static_cast<std::size_t>(At.row_idx[e])] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  const auto m = scalar_bccoo(At);
  std::vector<real_t> d(static_cast<std::size_t>(n), inf),
      nd(static_cast<std::size_t>(n));
  d[0] = 0.0;
  for (index_t it = 0; it < n; ++it) {
    cpu::spmv_semiring<cpu::MinPlus>(m, d, nd, 3);
    bool changed = false;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (nd[i] < d[i]) {
        d[i] = nd[i];
        changed = true;
      }
    }
    if (!changed) break;
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (std::isinf(ref[i])) {
      EXPECT_TRUE(std::isinf(d[i])) << i;
    } else {
      ASSERT_NEAR(d[i], ref[i], 1e-9) << i;
    }
  }
}

TEST(Semiring, OrAndBfsFrontier) {
  // 0 -> 1 -> 2, 0 -> 3.  Reachability in one hop from {0}.
  const auto At = fmt::Coo::from_triplets(4, 4, {1, 2, 3}, {0, 1, 0},
                                          {1.0, 1.0, 1.0});
  const auto m = scalar_bccoo(At);
  std::vector<real_t> f = {1, 0, 0, 0}, nf(4);
  cpu::spmv_semiring<cpu::OrAnd>(m, f, nf);
  EXPECT_EQ(nf, (std::vector<real_t>{0, 1, 0, 1}));
}

TEST(Semiring, MaxTimesPropagatesProbabilities) {
  const auto At = fmt::Coo::from_triplets(2, 2, {1, 1}, {0, 1}, {0.5, 0.9});
  const auto m = scalar_bccoo(At);
  std::vector<real_t> p = {0.8, 0.3}, np(2);
  cpu::spmv_semiring<cpu::MaxTimes>(m, p, np);
  EXPECT_DOUBLE_EQ(np[1], std::max(0.8 * 0.5, 0.3 * 0.9));
}

TEST(Semiring, LongSegmentAcrossChunks) {
  // One node with in-degree 3000: the min over its edges spans chunks.
  std::vector<index_t> ri(3000, 0), ci(3000);
  std::vector<real_t> w(3000);
  SplitMix64 rng(4);
  real_t best = std::numeric_limits<real_t>::infinity();
  for (index_t i = 0; i < 3000; ++i) {
    ci[static_cast<std::size_t>(i)] = i;
    w[static_cast<std::size_t>(i)] = rng.next_double(1.0, 9.0);
    best = std::min(best, w[static_cast<std::size_t>(i)] + 1.0);
  }
  const auto At = fmt::Coo::from_triplets(1, 3000, std::move(ri),
                                          std::move(ci), std::move(w));
  const auto m = scalar_bccoo(At);
  std::vector<real_t> d(3000, 1.0), nd(1);
  cpu::spmv_semiring<cpu::MinPlus>(m, d, nd, 8);
  EXPECT_DOUBLE_EQ(nd[0], best);
}

TEST(Semiring, RejectsBlockedFormatForExoticSemirings) {
  const auto A = gen::stencil2d(5, 5, true, 5);
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  const auto m = core::Bccoo::build(A, fc);
  std::vector<real_t> x(25, 1.0), y(25);
  EXPECT_THROW(cpu::spmv_semiring<cpu::MinPlus>(m, x, y),
               std::invalid_argument);
}

}  // namespace
}  // namespace yaspmv
