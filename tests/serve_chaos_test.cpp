// Serving-daemon chaos tests: the failure modes the daemon must absorb
// without crashing or wedging — poisoned requests degrading down the
// resilient ladder, clients vanishing mid-request, a writer killed with
// SIGKILL in the middle of a plan-cache store, and a 16-client soak with 10%
// injected faults where every clean request must match the CSR oracle
// bitwise and every faulted request must come back as a typed error.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/serve/client.hpp"
#include "yaspmv/serve/server.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

namespace fs = std::filesystem;

fmt::Coo pow2_matrix(index_t n, std::uint64_t seed) {
  static constexpr double kVals[] = {1.0, -1.0, 0.5, -0.5, 0.25, -0.25};
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    for (int j = 0; j < 5; ++j) {
      ri.push_back(i);
      ci.push_back(static_cast<index_t>((i * 7 + j * 13 + 1) %
                                        static_cast<index_t>(n)));
      v.push_back(kVals[rng.next_below(6)]);
    }
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(1.0);
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

std::vector<real_t> pow2_x(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    const int e = static_cast<int>(rng.next_below(7)) - 3;
    v = std::ldexp(rng.next_below(2) ? 1.0 : -1.0, e);
  }
  return x;
}

std::vector<real_t> csr_oracle(const fmt::Coo& a,
                               const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  fmt::Csr::from_coo(a).spmv(x, y);
  return y;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("yaspmv-chaos-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  serve::ServerOptions base_options() {
    serve::ServerOptions opt;
    opt.socket_path = (dir_ / "s.sock").string();
    opt.plan_cache_dir = (dir_ / "plans").string();
    opt.journal_dir = (dir_ / "journals").string();
    opt.tune_on_register = false;
    opt.enable_inject = true;
    return opt;
  }

  serve::Server& start(const serve::ServerOptions& opt) {
    server_ = std::make_unique<serve::Server>(opt);
    server_->start();
    return *server_;
  }

  std::string sock() const { return (dir_ / "s.sock").string(); }

  fs::path dir_;
  std::unique_ptr<serve::Server> server_;
};

// A poisoned request (every simulated rung's launch fails) degrades to the
// CPU baseline, STILL returns the right answer, dumps a journal per failed
// attempt — and the server keeps answering everyone else.
TEST_F(ServeChaosTest, InjectedFaultDegradesToCpuAndServerKeepsServing) {
  start(base_options());
  const auto a = pow2_matrix(64, 0x61);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 0x62);

  serve::RequestOptions inj;
  inj.inject = serve::Inject::kFailMain;
  const auto r = c.spmv(reg.matrix_id, x, inj);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.path, "coo-cpu-baseline");
  EXPECT_GE(r.faults.size(), 2u);  // every simulated rung failed
  for (const auto& f : r.faults) {
    EXPECT_EQ(f.status, Status::kLaunchFailure);
    EXPECT_FALSE(f.journal_file.empty());
    EXPECT_TRUE(fs::exists(f.journal_file))
        << "journal dump missing: " << f.journal_file;
  }
  // The CPU rung IS the oracle — bitwise equality holds trivially, but the
  // point is the value is right, not an error.
  const auto want = csr_oracle(a, x);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(r.y[i], want[i]);
  EXPECT_GE(server_->stats().recovered, 1u);

  // Next clean request on the same engine: back on the fast path.
  const auto clean = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean.recovered);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(clean.y[i], want[i]);
  }
}

// A NaN-poisoned request gets a typed error; only that client sees it.
TEST_F(ServeChaosTest, NanPolicyViolationIsTypedAndIsolated) {
  start(base_options());
  const auto a = pow2_matrix(64, 0x63);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 0x64);

  serve::RequestOptions nan;
  nan.inject = serve::Inject::kNan;
  const auto bad = c.spmv(reg.matrix_id, x, nan);
  EXPECT_EQ(bad.status.status, serve::ServeStatus::kFaulted);
  EXPECT_EQ(bad.status.code, Status::kDataCorruption);
  EXPECT_NE(bad.status.detail.find("NaN policy"), std::string::npos);

  const auto good = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(good.ok());
  const auto want = csr_oracle(a, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(good.y[i], want[i]);
  }
  const auto s = server_->stats();
  EXPECT_EQ(s.faulted, 1u);
  EXPECT_EQ(s.completed, 2u);
}

// A client that vanishes mid-request (socket closed while its apply holds
// the executor) must not wedge or kill the server.
TEST_F(ServeChaosTest, MidRequestDisconnectLeavesServerHealthy) {
  auto opt = base_options();
  opt.executors = 1;
  start(opt);
  const auto a = pow2_matrix(64, 0x65);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 0x66);

  {
    // Hand-roll the request so we can slam the connection shut while the
    // server is still executing it.
    serve::Client doomed(sock());
    serve::WireWriter w;
    w.put<std::uint64_t>(reg.matrix_id);
    w.put<std::uint32_t>(0);  // no deadline
    w.put<std::uint8_t>(
        static_cast<std::uint8_t>(serve::Inject::kSleepMs));
    w.put<std::uint32_t>(200);
    w.put_vec(x);
    serve::write_frame(doomed.fd(), serve::MsgType::kSpmv, w.bytes());
    for (int spin = 0; spin < 200 && server_->stats().inflight < 1; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    doomed.close();  // gone before the reply exists
  }

  // The abandoned apply finishes on the server; new requests are unaffected.
  const auto r = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  const auto want = csr_oracle(a, x);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(r.y[i], want[i]);
  // Disconnect is observed when the server tries to write the reply.
  for (int spin = 0; spin < 200 && server_->stats().disconnects < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server_->stats().disconnects, 1u);
}

// kill -9 in the middle of plan-cache stores: the cache directory must come
// back readable — every key loads as either a valid record or a miss, never
// a crash — and new stores must keep working.
TEST_F(ServeChaosTest, SigkillDuringPlanCacheWriteRecoversCleanly) {
  const std::string cache_dir = (dir_ / "killed-plans").string();
  serve::PlanCache cache(cache_dir);

  io::PlanRecord rec;
  rec.device = "GTX680";
  rec.best.format.block_w = 2;
  rec.best.format.block_h = 2;
  rec.best.gflops = 42.0;
  rec.tuning_seconds = 1.5;
  rec.evaluated = 100;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: hammer the cache with stores until SIGKILLed mid-write.
    serve::PlanCache victim(cache_dir);
    io::PlanRecord r = rec;
    for (std::uint64_t i = 0;; ++i) {
      r.payload_checksum = i % 16;
      victim.store(r);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Recovery: every slot is a valid record or a clean miss.
  int valid = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto p = cache.load(i, "GTX680");
    if (p) {
      EXPECT_EQ(p->payload_checksum, i);
      EXPECT_EQ(p->best.gflops, 42.0);
      ++valid;
    }
  }
  EXPECT_GE(valid, 1);  // 150 ms of stores landed at least one record

  // The survivor can still write, and a full round trip works.
  rec.payload_checksum = 999;
  EXPECT_TRUE(cache.store(rec));
  const auto back = cache.load(999, "GTX680");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->best.same_plan(rec.best));
}

// The acceptance soak: 16 concurrent clients, 10% injected faults, zero
// server crashes, every faulted request a typed error, every clean request
// bitwise-identical to the CSR oracle.
TEST_F(ServeChaosTest, SoakSixteenClientsTenPercentFaults) {
  auto opt = base_options();
  opt.queue_capacity = 256;
  opt.max_inflight = 64;
  start(opt);
  const auto a = pow2_matrix(96, 0x77);
  serve::Client reg_client(sock());
  const auto reg = reg_client.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);

  constexpr int kClients = 16;
  constexpr int kRequests = 20;
  std::atomic<int> clean_ok{0}, clean_bad{0};
  std::atomic<int> fault_typed{0}, fault_wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      serve::Client c(sock());
      SplitMix64 rng(0x5eed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kRequests; ++i) {
        const auto x = pow2_x(a.cols, 0x800 + t * 1000 + i);
        const bool poison = (i % 10) == 3;  // 10% of requests carry a fault
        serve::RequestOptions ropt;
        ropt.retries = 40;
        ropt.backoff_ms = 5;
        if (poison) {
          // Alternate between a request-data fault (typed error) and an
          // execution fault (ladder recovery).
          ropt.inject = (rng.next_below(2) == 0) ? serve::Inject::kNan
                                                 : serve::Inject::kFailMain;
        }
        const auto r = c.spmv(reg.matrix_id, x, ropt);
        if (poison && ropt.inject == serve::Inject::kNan) {
          // Must be a typed kFaulted carrying kDataCorruption.
          if (r.status.status == serve::ServeStatus::kFaulted &&
              r.status.code == Status::kDataCorruption) {
            ++fault_typed;
          } else {
            ++fault_wrong;
          }
          continue;
        }
        // Clean and kFailMain requests must succeed with oracle-exact y
        // (kFailMain recovers through the ladder to the CPU rung).
        if (!r.ok()) {
          ++clean_bad;
          continue;
        }
        const auto want = csr_oracle(a, x);
        bool exact = r.y.size() == want.size();
        for (std::size_t k = 0; exact && k < want.size(); ++k) {
          exact = r.y[k] == want[k];
        }
        (exact ? clean_ok : clean_bad)++;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(clean_bad.load(), 0);
  EXPECT_EQ(fault_wrong.load(), 0);
  EXPECT_GT(fault_typed.load(), 0);
  EXPECT_EQ(clean_ok.load() + fault_typed.load(), kClients * kRequests);

  // The server is alive and consistent after the storm.
  ASSERT_TRUE(server_->running());
  const auto s = server_->stats();
  EXPECT_EQ(s.faulted, static_cast<std::uint64_t>(fault_typed.load()));
  EXPECT_EQ(s.completed,
            static_cast<std::uint64_t>(clean_ok.load() + fault_typed.load()));
  // And it still serves.
  const auto x = pow2_x(a.cols, 0x999);
  const auto after = reg_client.spmv(reg.matrix_id, x);
  ASSERT_TRUE(after.ok());
  const auto want = csr_oracle(a, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(after.y[i], want[i]);
  }
}

// The silent-corruption soak: kCorruptPublish perturbs partial sums right
// before they become visible — no classified error is raised anywhere, so an
// unverified server would return wrong bits with kOk.  Under the ABFT
// checksum every poisoned request must either recover to the bitwise-exact
// oracle answer or fail typed; a wrong kOk reply is the one unforgivable
// outcome.
TEST_F(ServeChaosTest, VerifiedSoakNeverReturnsWrongBitsUnderCorruptPublish) {
  auto opt = base_options();
  opt.verified = true;
  opt.queue_capacity = 256;
  opt.max_inflight = 64;
  start(opt);
  const auto a = pow2_matrix(256, 0x88);  // 1536 blocks: 3 workgroups, so
  // workgroup 1's corrupted Grp_sum publish has a successor that consumes
  // it (a 2-workgroup matrix makes the corrupt-publish fault a dead no-op)
  serve::Client reg_client(sock());
  const auto reg = reg_client.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);

  // First, prove the injected fault is live: the same corrupt-publish
  // request on an UNVERIFIED server silently flips bits in a kOk reply.
  // (Otherwise the soak below would vacuously pass against a dud fault.)
  {
    serve::ServerOptions unver = base_options();
    unver.socket_path = (dir_ / "unverified.sock").string();
    serve::Server shadow(unver);
    shadow.start();
    serve::Client sc(unver.socket_path);
    const auto sreg = sc.register_matrix(a);
    ASSERT_EQ(sreg.status.status, serve::ServeStatus::kOk);
    const auto x = pow2_x(a.cols, 0x89);
    serve::RequestOptions poison;
    poison.inject = serve::Inject::kCorruptPublish;
    const auto r = sc.spmv(sreg.matrix_id, x, poison);
    ASSERT_TRUE(r.ok()) << r.status.detail;
    const auto want = csr_oracle(a, x);
    bool exact = true;
    for (std::size_t i = 0; exact && i < want.size(); ++i) {
      exact = r.y[i] == want[i];
    }
    EXPECT_FALSE(exact) << "corrupt-publish did not perturb the reply; "
                           "the verified soak would prove nothing";
    sc.close();
    shadow.stop();
  }

  constexpr int kClients = 8;
  constexpr int kRequests = 15;
  std::atomic<int> ok_exact{0}, ok_wrong{0}, typed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      serve::Client c(sock());
      for (int i = 0; i < kRequests; ++i) {
        const auto x = pow2_x(a.cols, 0xA00 + t * 1000 + i);
        serve::RequestOptions ropt;
        ropt.retries = 40;
        ropt.backoff_ms = 5;
        if (i % 3 == 1) ropt.inject = serve::Inject::kCorruptPublish;
        const auto r = c.spmv(reg.matrix_id, x, ropt);
        if (!r.ok()) {
          // A typed failure is an acceptable (honest) answer under attack.
          ++typed;
          continue;
        }
        EXPECT_TRUE(r.verified);
        const auto want = csr_oracle(a, x);
        bool exact = r.y.size() == want.size();
        for (std::size_t k = 0; exact && k < want.size(); ++k) {
          exact = r.y[k] == want[k];
        }
        (exact ? ok_exact : ok_wrong)++;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok_wrong.load(), 0);  // zero wrong bitwise kOk replies — ever
  EXPECT_GT(ok_exact.load(), 0);
  EXPECT_EQ(ok_exact.load() + typed.load(), kClients * kRequests);

  ASSERT_TRUE(server_->running());
  const auto s = server_->stats();
  EXPECT_GE(s.verified_requests,
            static_cast<std::uint64_t>(ok_exact.load()));
  EXPECT_GE(s.integrity_faults, 1u);  // the checksum demonstrably tripped
  EXPECT_GE(s.integrity_recovered, 1u);
}

// Registration with non-finite matrix values is rejected up front — the NaN
// policy applies to payloads, not just request vectors.
TEST_F(ServeChaosTest, RegisterRejectsNonFiniteValues) {
  start(base_options());
  std::vector<index_t> ri = {0, 1};
  std::vector<index_t> ci = {0, 1};
  std::vector<real_t> v = {1.0, std::numeric_limits<real_t>::quiet_NaN()};
  fmt::Coo a;
  a.rows = 2;
  a.cols = 2;
  a.row_idx = ri;
  a.col_idx = ci;
  a.vals = v;
  serve::Client c(sock());
  const auto r = c.register_matrix(a);
  EXPECT_EQ(r.status.status, serve::ServeStatus::kFaulted);
  EXPECT_EQ(r.status.code, Status::kDataCorruption);
  // The server refused it but keeps serving.
  EXPECT_EQ(c.stats().status.status, serve::ServeStatus::kOk);
}

}  // namespace
}  // namespace yaspmv
