// Serving-daemon tests: protocol round trips, admission control, deadlines,
// the durable plan cache and graceful drain, all against an in-process
// Server on a Unix-domain socket.
//
// Correctness contract: matrix values and vector entries are small powers of
// two (±1, ±0.5, ±0.25, ...), so every product and partial sum is exact in
// double precision and ANY summation order produces the same bits — served
// results are compared against the serial CSR oracle with EXPECT_EQ on the
// raw doubles, not a tolerance.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/serve/client.hpp"
#include "yaspmv/serve/server.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

namespace fs = std::filesystem;

/// n x n sparse matrix whose values are powers of two in [2^-2, 2^0] with
/// random signs: exact arithmetic at any association.
fmt::Coo pow2_matrix(index_t n, std::uint64_t seed) {
  static constexpr double kVals[] = {1.0, -1.0, 0.5, -0.5, 0.25, -0.25};
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    for (int j = 0; j < 5; ++j) {
      ri.push_back(i);
      ci.push_back(static_cast<index_t>((i * 7 + j * 13 + 1) %
                                        static_cast<index_t>(n)));
      v.push_back(kVals[rng.next_below(6)]);
    }
    ri.push_back(i);  // guaranteed diagonal so no row is empty
    ci.push_back(i);
    v.push_back(1.0);
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

/// x with power-of-two entries 2^e, e in [-3, 3], random sign.
std::vector<real_t> pow2_x(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    const int e = static_cast<int>(rng.next_below(7)) - 3;
    v = std::ldexp(rng.next_below(2) ? 1.0 : -1.0, e);
  }
  return x;
}

std::vector<real_t> csr_oracle(const fmt::Coo& a,
                               const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  fmt::Csr::from_coo(a).spmv(x, y);
  return y;
}

void expect_bitwise(const std::vector<real_t>& got,
                    const std::vector<real_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "row " << i << " differs bitwise";
  }
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("yaspmv-serve-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    server_.reset();  // graceful drain before the directory goes away
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  serve::ServerOptions base_options() {
    serve::ServerOptions opt;
    opt.socket_path = (dir_ / "s.sock").string();
    opt.plan_cache_dir = (dir_ / "plans").string();
    opt.journal_dir = (dir_ / "journals").string();
    opt.tune_on_register = false;  // most tests do not need a tuning sweep
    return opt;
  }

  serve::Server& start(const serve::ServerOptions& opt) {
    server_ = std::make_unique<serve::Server>(opt);
    server_->start();
    return *server_;
  }

  std::string sock() const { return (dir_ / "s.sock").string(); }

  fs::path dir_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeTest, SpmvMatchesCsrOracleBitwise) {
  start(base_options());
  const auto a = pow2_matrix(64, 0xA1);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk) << reg.status.detail;
  EXPECT_TRUE(reg.newly_registered);
  const auto x = pow2_x(a.cols, 0xB2);
  const auto r = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  EXPECT_EQ(r.ladder_step, 0u);
  EXPECT_FALSE(r.recovered);
  expect_bitwise(r.y, csr_oracle(a, x));
}

TEST_F(ServeTest, ConcurrentClientsAllMatchOracle) {
  start(base_options());
  const auto a = pow2_matrix(96, 0xC3);
  serve::Client reg_client(sock());
  const auto reg = reg_client.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);

  constexpr int kClients = 8;
  constexpr int kRequests = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      serve::Client c(sock());
      for (int i = 0; i < kRequests; ++i) {
        const auto x = pow2_x(a.cols, 0xD00 + t * 100 + i);
        serve::RequestOptions opt;
        opt.retries = 20;  // ride out transient overload via backoff
        const auto r = c.spmv(reg.matrix_id, x, opt);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        const auto want = csr_oracle(a, x);
        for (std::size_t k = 0; k < want.size(); ++k) {
          if (r.y[k] != want[k]) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto s = server_->stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(s.faulted, 0u);
}

TEST_F(ServeTest, SecondRegistrationIsIdempotent) {
  start(base_options());
  const auto a = pow2_matrix(48, 0xE4);
  serve::Client c1(sock()), c2(sock());
  const auto r1 = c1.register_matrix(a);
  const auto r2 = c2.register_matrix(a);
  ASSERT_EQ(r1.status.status, serve::ServeStatus::kOk);
  ASSERT_EQ(r2.status.status, serve::ServeStatus::kOk);
  EXPECT_EQ(r1.matrix_id, r2.matrix_id);
  EXPECT_TRUE(r1.newly_registered);
  EXPECT_FALSE(r2.newly_registered);
  EXPECT_EQ(server_->stats().registered, 1u);
}

TEST_F(ServeTest, WarmRestartLoadsPlanFromDurableCache) {
  auto opt = base_options();
  opt.tune_on_register = true;
  start(opt);
  const auto a = pow2_matrix(32, 0xF5);
  std::uint64_t id = 0;
  std::int32_t cold_evaluated = 0;
  {
    serve::Client c(sock());
    const auto cold = c.register_matrix(a);
    ASSERT_EQ(cold.status.status, serve::ServeStatus::kOk);
    EXPECT_FALSE(cold.warm);
    EXPECT_GT(cold.evaluated, 0);
    id = cold.matrix_id;
    cold_evaluated = cold.evaluated;
    EXPECT_EQ(server_->stats().plan_cache_misses, 1u);
  }
  server_->stop();
  server_.reset();

  // A "restarted daemon": new Server, same cache directory.
  start(opt);
  serve::Client c(sock());
  const auto warm = c.register_matrix(a);
  ASSERT_EQ(warm.status.status, serve::ServeStatus::kOk);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.matrix_id, id);
  // No re-tuning happened: the reply echoes the sweep size recorded in the
  // cached plan, which must match what the cold registration evaluated.
  EXPECT_EQ(warm.evaluated, cold_evaluated);
  EXPECT_EQ(server_->stats().plan_cache_hits, 1u);
  // The warm path must still serve bitwise-correct results.
  const auto x = pow2_x(a.cols, 0x16);
  const auto r = c.spmv(id, x);
  ASSERT_TRUE(r.ok());
  expect_bitwise(r.y, csr_oracle(a, x));
}

TEST_F(ServeTest, UnknownMatrixAndShapeMismatchAreTyped) {
  start(base_options());
  const auto a = pow2_matrix(32, 0x17);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);

  const auto unknown = c.spmv(0xDEADBEEFu, pow2_x(a.cols, 1));
  EXPECT_EQ(unknown.status.status, serve::ServeStatus::kUnknownMatrix);

  const auto short_x = c.spmv(reg.matrix_id, pow2_x(a.cols - 1, 1));
  EXPECT_EQ(short_x.status.status, serve::ServeStatus::kBadRequest);

  // The connection survives typed errors: a clean request still works.
  const auto x = pow2_x(a.cols, 2);
  const auto ok = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(ok.ok());
  expect_bitwise(ok.y, csr_oracle(a, x));
}

TEST_F(ServeTest, OverloadReturnsTypedRejectionNotHang) {
  auto opt = base_options();
  opt.executors = 1;
  opt.queue_capacity = 1;
  opt.max_inflight = 2;
  opt.enable_inject = true;
  start(opt);
  const auto a = pow2_matrix(32, 0x28);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 3);

  // Fill the server: one request executing (sleeping), one queued.
  serve::RequestOptions slow;
  slow.inject = serve::Inject::kSleepMs;
  slow.inject_arg = 400;
  // The two fillers race each other into the size-1 queue before the executor
  // pops the first one; retries let the loser land instead of bouncing.
  slow.retries = 50;
  slow.backoff_ms = 5;
  std::vector<std::thread> sleepers;
  for (int i = 0; i < 2; ++i) {
    sleepers.emplace_back([&] {
      serve::Client sc(sock());
      const auto r = sc.spmv(reg.matrix_id, x, slow);
      EXPECT_TRUE(r.ok()) << r.status.detail;
    });
  }
  // Wait until both are admitted (inflight == max_inflight).
  for (int spin = 0; spin < 200 && server_->stats().inflight < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server_->stats().inflight, 2u);

  const auto rejected = c.spmv(reg.matrix_id, x);  // no retries
  EXPECT_EQ(rejected.status.status, serve::ServeStatus::kOverloaded);
  EXPECT_GE(server_->stats().overloaded, 1u);

  // With retries + backoff the same request eventually lands.
  serve::RequestOptions retrying;
  retrying.retries = 50;
  retrying.backoff_ms = 20;
  const auto ok = c.spmv(reg.matrix_id, x, retrying);
  ASSERT_TRUE(ok.ok()) << ok.status.detail;
  EXPECT_GT(ok.admission_attempts, 1);
  expect_bitwise(ok.y, csr_oracle(a, x));
  for (auto& th : sleepers) th.join();
}

TEST_F(ServeTest, DeadlineExpiredWhileQueuedIsDroppedAtDequeue) {
  auto opt = base_options();
  opt.executors = 1;
  opt.enable_inject = true;
  start(opt);
  const auto a = pow2_matrix(32, 0x39);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 4);

  serve::RequestOptions slow;
  slow.inject = serve::Inject::kSleepMs;
  slow.inject_arg = 300;
  std::thread sleeper([&] {
    serve::Client sc(sock());
    EXPECT_TRUE(sc.spmv(reg.matrix_id, x, slow).ok());
  });
  for (int spin = 0; spin < 200 && server_->stats().inflight < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  serve::RequestOptions dl;
  dl.deadline_ms = 50;  // expires while the sleeper holds the executor
  const auto r = c.spmv(reg.matrix_id, x, dl);
  EXPECT_EQ(r.status.status, serve::ServeStatus::kDeadlineExpired);
  EXPECT_GE(server_->stats().deadline_expired, 1u);
  sleeper.join();

  // A deadline generous enough always completes.
  serve::RequestOptions ok_dl;
  ok_dl.deadline_ms = 60'000;
  const auto ok = c.spmv(reg.matrix_id, x, ok_dl);
  ASSERT_TRUE(ok.ok());
  expect_bitwise(ok.y, csr_oracle(a, x));
}

TEST_F(ServeTest, SolveConvergesOnSpdSystem) {
  start(base_options());
  // Diagonally dominant symmetric matrix -> CG converges.
  const index_t n = 64;
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i); ci.push_back(i); v.push_back(4.0);
    if (i + 1 < n) {
      ri.push_back(i); ci.push_back(i + 1); v.push_back(-1.0);
      ri.push_back(i + 1); ci.push_back(i); v.push_back(-1.0);
    }
  }
  const auto a = fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                         std::move(v));
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto b = pow2_x(n, 5);
  const auto r = c.solve(reg.matrix_id, b, /*solver=*/1, 1e-10, 2000);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.rel_residual, 1e-10);
  // Check A x ~= b through the CSR oracle.
  const auto ax = csr_oracle(a, r.x);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST_F(ServeTest, MalformedFrameGetsProtocolErrorReply) {
  start(base_options());
  serve::Client c(sock());  // raw fd access
  const char garbage[32] = "this is not a YSRV frame at all";
  ASSERT_EQ(::send(c.fd(), garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));
  serve::Frame f;
  ASSERT_TRUE(serve::read_frame(c.fd(), f));
  serve::WireReader r(f.payload);
  const auto status = serve::get_reply_status(r);
  EXPECT_EQ(status.status, serve::ServeStatus::kProtocolError);
  EXPECT_GE(server_->stats().protocol_errors, 1u);

  // The server dropped that connection but keeps serving new ones.
  serve::Client c2(sock());
  const auto s = c2.stats();
  EXPECT_EQ(s.status.status, serve::ServeStatus::kOk);
}

TEST_F(ServeTest, GracefulDrainAnswersQueuedRequestsAndExits) {
  auto opt = base_options();
  opt.executors = 1;
  opt.enable_inject = true;
  opt.drain_timeout_ms = 100;  // watchdog fires fast: queued work is shed
  start(opt);
  const auto a = pow2_matrix(32, 0x4A);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 6);

  // One long request executing + several queued behind it.
  serve::RequestOptions slow;
  slow.inject = serve::Inject::kSleepMs;
  slow.inject_arg = 500;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0}, shed_count{0}, torn{0}, other{0};
  clients.emplace_back([&] {
    try {
      serve::Client sc(sock());
      const auto r = sc.spmv(reg.matrix_id, x, slow);
      (r.ok() ? ok_count : other)++;
    } catch (const IoError&) {
      ++torn;
    }
  });
  for (int spin = 0; spin < 200 && server_->stats().inflight < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      // A request racing the *final* transport teardown (not yet admitted
      // when the listener dies) may see a clean connect/read failure
      // instead of a typed reply; that is the one tolerated non-answer.
      try {
        serve::Client sc(sock());
        const auto r = sc.spmv(reg.matrix_id, x);
        if (r.ok()) {
          ++ok_count;
        } else if (r.status.status == serve::ServeStatus::kShuttingDown) {
          ++shed_count;
        } else {
          ++other;
        }
      } catch (const IoError&) {
        ++torn;
      }
    });
  }
  for (int spin = 0; spin < 200 && server_->stats().inflight < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  server_->stop();  // blocks until drained
  for (auto& th : clients) th.join();
  // Every ADMITTED request got a definite answer: completed or typed
  // kShuttingDown.  The inflight>=2 spin above guarantees at least the
  // sleeper and one queued request were admitted before stop(), so at most
  // the two late clients may have lost the race against teardown.
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok_count.load(), 1);      // the executing sleeper finished
  EXPECT_LE(torn.load(), 2);
  EXPECT_EQ(ok_count.load() + shed_count.load() + torn.load(), 4);
  EXPECT_FALSE(server_->running());
  // The socket is gone: new connections fail cleanly.
  EXPECT_THROW({ serve::Client reconnect(sock()); }, IoError);
}

TEST_F(ServeTest, VerifiedSpmvRunsChecksummedAndMatchesOracle) {
  start(base_options());
  const auto a = pow2_matrix(64, 0x71);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto x = pow2_x(a.cols, 0x72);

  serve::RequestOptions vopt;
  vopt.verified = true;
  const auto r = c.spmv(reg.matrix_id, x, vopt);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.recovered);
  expect_bitwise(r.y, csr_oracle(a, x));

  // A plain request on the same connection stays unverified.
  const auto plain = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.verified);
  expect_bitwise(plain.y, r.y);

  const auto s = server_->stats();
  EXPECT_EQ(s.verified_requests, 1u);
  EXPECT_EQ(s.integrity_faults, 0u);  // clean run: zero false positives
}

TEST_F(ServeTest, VerifiedSolveRunsTheSelfCheckingSolvers) {
  auto opt = base_options();
  opt.verified = true;  // server-wide: every request checksum-verified
  start(opt);
  const index_t n = 64;
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i); ci.push_back(i); v.push_back(4.0);
    if (i + 1 < n) {
      ri.push_back(i); ci.push_back(i + 1); v.push_back(-1.0);
      ri.push_back(i + 1); ci.push_back(i); v.push_back(-1.0);
    }
  }
  const auto a = fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                         std::move(v));
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  const auto b = pow2_x(n, 0x73);
  // No per-request flag: the server-wide option alone promotes the solve.
  const auto r = c.solve(reg.matrix_id, b, /*solver=*/1, 1e-10, 2000);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.integrity_faults, 0u);
  EXPECT_EQ(r.rollbacks, 0u);
  const auto ax = csr_oracle(a, r.x);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 1e-8);
  }
  const auto s = server_->stats();
  EXPECT_GE(s.verified_requests, 1u);
  EXPECT_EQ(s.integrity_faults, 0u);
}

TEST_F(ServeTest, OversizedFrameIsRejectedBeforeAllocation) {
  auto opt = base_options();
  opt.max_frame_bytes = 512;  // far below the protocol ceiling
  start(opt);
  serve::Client c(sock());

  // A well-formed header whose declared length exceeds the cap — but is
  // far below kMaxFramePayload — must bounce on the length field alone,
  // before any payload buffer is allocated or a single payload byte read.
  struct Header {
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t type;
    std::uint64_t len;
  } h{serve::kFrameMagic, serve::kProtocolVersion,
      static_cast<std::uint16_t>(serve::MsgType::kSpmv), 1u << 20};
  ASSERT_EQ(::send(c.fd(), &h, sizeof h, 0),
            static_cast<ssize_t>(sizeof h));
  serve::Frame f;
  ASSERT_TRUE(serve::read_frame(c.fd(), f));
  serve::WireReader r(f.payload);
  const auto status = serve::get_reply_status(r);
  EXPECT_EQ(status.status, serve::ServeStatus::kProtocolError);
  EXPECT_NE(status.detail.find("exceeds limit"), std::string::npos)
      << status.detail;
  EXPECT_GE(server_->stats().protocol_errors, 1u);

  // Small frames still fit under the cap: a fresh connection serves stats.
  serve::Client c2(sock());
  EXPECT_EQ(c2.stats().status.status, serve::ServeStatus::kOk);
}

TEST_F(ServeTest, StatsReportOverSocketMatchesInProcess) {
  start(base_options());
  const auto a = pow2_matrix(32, 0x5B);
  serve::Client c(sock());
  const auto reg = c.register_matrix(a);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk);
  (void)c.spmv(reg.matrix_id, pow2_x(a.cols, 7));
  const auto wire = c.stats();
  const auto local = server_->stats();
  EXPECT_EQ(wire.accepted, local.accepted);
  EXPECT_EQ(wire.completed, local.completed);
  EXPECT_EQ(wire.registered, 1u);
}

}  // namespace
}  // namespace yaspmv
