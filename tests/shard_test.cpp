// Shard-aware execution tests: the standing contract is that sharding is a
// *placement* decision, never a numerical one.  The shard decomposition
// derives from the slice/chunk grid (not the live thread count), the carry
// fix-up tree and the combine order are shard-invariant, so the sharded
// apply must be bitwise identical to the 1-shard apply for every shard
// count x thread count x SIMD level combination — asserted here with
// memcmp, per the acceptance matrix shards {1,2,4} x threads {1,4,16} x
// levels {portable, avx2}.  Also covers the shard metadata (chunk-aligned
// block splits, per-shard halo column ranges), WorkPool::run_sharded
// exactly-once coverage with spill, FirstTouchBuffer, and the
// model_time_sharded cost model.  Labeled `shard` (run under TSan by
// tools/run_sanitized_tests.sh).
#include "yaspmv/cpu/spmv.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "yaspmv/cpu/simd.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/sim/device.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv {
namespace {

using cpu::SegSumMode;
using cpu::simd::Level;

struct LevelGuard {
  Level saved;
  explicit LevelGuard(Level l) : saved(cpu::simd::active()) {
    cpu::simd::set_level(l);
  }
  ~LevelGuard() { cpu::simd::set_level(saved); }
};

std::shared_ptr<const core::Bccoo> build(const fmt::Coo& A,
                                         core::FormatConfig fc = {}) {
  return std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc));
}

std::vector<real_t> seeded(std::size_t n, std::uint64_t seed) {
  std::vector<real_t> v(n);
  SplitMix64 rng(seed);
  for (auto& x : v) x = rng.next_double(-1, 1);
  return v;
}

bool bitwise_equal(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

std::vector<Level> levels_to_test() {
  std::vector<Level> ls{Level::kPortable};
  if (cpu::simd::cpu_has_avx2()) ls.push_back(Level::kAvx2);
  return ls;
}

std::vector<fmt::Coo> fixture_matrices() {
  std::vector<fmt::Coo> ms;
  ms.push_back(gen::stencil2d(24, 24, false, 1));
  ms.push_back(gen::powerlaw(700, 700, 5, 2.2, 0.4, 2));
  ms.push_back(gen::fem_mesh(500, 30, 3, 0.05, 3));
  return ms;
}

// ---------------------------------------------------------------------------
// The acceptance matrix: sharded output == 1-shard output, bit for bit.

TEST(ShardExecution, ShardedMatchesUnshardedBitwise) {
  const auto mats = fixture_matrices();
  for (Level lvl : levels_to_test()) {
    LevelGuard g(lvl);
    for (std::size_t mi = 0; mi < mats.size(); ++mi) {
      const auto& A = mats[mi];
      const auto m = build(A);
      const auto x = seeded(static_cast<std::size_t>(A.cols), 42);
      for (unsigned threads : {1u, 4u, 16u}) {
        std::vector<real_t> base(static_cast<std::size_t>(A.rows));
        cpu::CpuSpmv e1(m, threads, core::ColStream::kAuto,
                        SegSumMode::kSpeculative,
                        cpu::grid::KernelDispatch::kAuto, 1);
        e1.spmv(x, base);
        for (unsigned shards : {2u, 4u}) {
          std::vector<real_t> got(base.size());
          cpu::CpuSpmv es(m, threads, core::ColStream::kAuto,
                          SegSumMode::kSpeculative,
                          cpu::grid::KernelDispatch::kAuto, shards);
          EXPECT_EQ(es.shard_count(), shards);
          es.spmv(x, got);
          ASSERT_TRUE(bitwise_equal(base, got))
              << "matrix " << mi << " threads=" << threads
              << " shards=" << shards << " level=" << to_string(lvl);
        }
      }
    }
  }
}

TEST(ShardExecution, ShardedMatchesUnshardedBlockedAndSliced) {
  const auto A = gen::fem_mesh(600, 30, 3, 0.05, 4);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 9);
  core::FormatConfig blocked;
  blocked.block_w = 2;
  blocked.block_h = 2;
  core::FormatConfig sliced;
  sliced.slices = 4;
  for (const auto& fc : {blocked, sliced}) {
    const auto m = build(A, fc);
    for (unsigned threads : {2u, 8u}) {
      std::vector<real_t> base(static_cast<std::size_t>(A.rows)),
          got(static_cast<std::size_t>(A.rows));
      cpu::CpuSpmv e1(m, threads, core::ColStream::kAuto,
                      SegSumMode::kSpeculative,
                      cpu::grid::KernelDispatch::kAuto, 1);
      cpu::CpuSpmv e4(m, threads, core::ColStream::kAuto,
                      SegSumMode::kSpeculative,
                      cpu::grid::KernelDispatch::kAuto, 4);
      e1.spmv(x, base);
      e4.spmv(x, got);
      ASSERT_TRUE(bitwise_equal(base, got))
          << "block_w=" << fc.block_w << " slices=" << fc.slices
          << " threads=" << threads;
    }
  }
}

TEST(ShardExecution, RunToRunBitwiseReproducible) {
  const auto A = gen::powerlaw(800, 800, 6, 2.2, 0.4, 17);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 21);
  cpu::CpuSpmv eng(build(A), 16, core::ColStream::kAuto,
                   SegSumMode::kSpeculative,
                   cpu::grid::KernelDispatch::kAuto, 4);
  std::vector<real_t> first(static_cast<std::size_t>(A.rows));
  eng.spmv(x, first);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<real_t> again(first.size());
    eng.spmv(x, again);
    ASSERT_TRUE(bitwise_equal(first, again)) << "rep " << rep;
  }
}

// ---------------------------------------------------------------------------
// Shard metadata: block splits and halo column ranges.

TEST(ShardExecution, ShardBlockStartsAreMonotoneAndTileAligned) {
  const auto A = gen::powerlaw(900, 900, 6, 2.1, 0.3, 5);
  const auto f = core::Bccoo::build(A, {});
  for (unsigned shards : {1u, 2u, 4u, 7u}) {
    const auto starts = f.shard_block_starts(shards);
    ASSERT_EQ(starts.size(), static_cast<std::size_t>(shards) + 1);
    EXPECT_EQ(starts.front(), 0u);
    EXPECT_EQ(starts.back(), f.num_blocks);
    for (unsigned s = 0; s < shards; ++s) {
      EXPECT_LE(starts[s], starts[s + 1]);
      // Interior boundaries land on decode-tile edges so a shard never
      // splits a column tile.
      if (s > 0 && starts[s] < f.num_blocks) {
        EXPECT_EQ(starts[s] % core::Bccoo::kColTile, 0u) << "shard " << s;
      }
    }
  }
}

TEST(ShardExecution, HaloColumnRangesCoverTheShardsBlocks) {
  const auto A = gen::fem_mesh(500, 30, 3, 0.05, 3);
  const auto f = core::Bccoo::build(A, {});
  const auto coo = f.to_coo();
  const auto starts = f.shard_block_starts(4);
  for (unsigned s = 0; s < 4; ++s) {
    const auto [c0, c1] = f.block_col_range(starts[s], starts[s + 1]);
    EXPECT_GE(c0, 0);
    EXPECT_LE(c1, f.cols);
    EXPECT_LE(c0, c1);
  }
  // The engine mirrors the same ranges per shard.
  cpu::CpuSpmv eng(std::make_shared<const core::Bccoo>(f), 2,
                   core::ColStream::kAuto, SegSumMode::kSpeculative,
                   cpu::grid::KernelDispatch::kAuto, 4);
  for (unsigned s = 0; s < eng.shard_count(); ++s) {
    const auto [c0, c1] = eng.shard_col_range(s);
    EXPECT_GE(c0, 0);
    EXPECT_LE(c1, f.cols);
  }
}

TEST(ShardExecution, ShardCountClampsAndDefaults) {
  const auto A = gen::stencil2d(16, 16, false, 1);
  const auto m = build(A);
  // shards=0 resolves to the probed NUMA domain count (>= 1).
  cpu::CpuSpmv probe(m, 2, core::ColStream::kAuto, SegSumMode::kSpeculative,
                     cpu::grid::KernelDispatch::kAuto, 0);
  EXPECT_GE(probe.shard_count(), 1u);
  EXPECT_EQ(probe.shard_count(), default_shards());
  // Absurd counts clamp to kMaxShards instead of exploding the grid.
  cpu::CpuSpmv wide(m, 2, core::ColStream::kAuto, SegSumMode::kSpeculative,
                    cpu::grid::KernelDispatch::kAuto, 999);
  EXPECT_LE(wide.shard_count(), kMaxShards);
}

// ---------------------------------------------------------------------------
// WorkPool::run_sharded / FirstTouchBuffer.

TEST(RunSharded, CoversEveryIndexExactlyOnceWithSpill) {
  WorkPool pool(4);
  constexpr std::size_t kN = 1000;
  // Lopsided shard map: shard 0 owns 900 of 1000 indices, so shard 1's
  // workers must spill into shard 0's range to finish.
  const std::size_t starts[] = {0, 900, kN};
  for (unsigned workers : {1u, 2u, 4u}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.run_sharded(kN, starts, 2, workers,
                     [&](unsigned, std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " index " << i;
    }
  }
}

TEST(RunSharded, DegradesToUnorderedOnOneShard) {
  WorkPool pool(2);
  const std::size_t starts[] = {0, 64};
  std::atomic<int> ran{0};
  pool.run_sharded(64, starts, 1, 2,
                   [&](unsigned, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(FirstTouch, BufferFillsShardedAndSerially) {
  const std::size_t starts[] = {0, 512, 1024};
  FirstTouchBuffer<real_t> buf;
  buf.init(1024, 2.5, starts, 2, 4);
  ASSERT_EQ(buf.size(), 1024u);
  EXPECT_FALSE(buf.empty());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], 2.5) << "index " << i;
  }
  // Serial fallback (1 shard) fills identically.
  FirstTouchBuffer<real_t> serial;
  serial.init(1024, 2.5, starts, 1, 1);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], 2.5);
  }
  FirstTouchBuffer<real_t> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
}

// ---------------------------------------------------------------------------
// Cost model.

TEST(ShardModel, CollapsesToThreadModelWithoutCrossNodePenalty) {
  sim::KernelStats st;
  st.global_load_bytes = 1 << 26;
  st.global_store_bytes = 1 << 22;
  st.flops = 1 << 24;
  st.kernel_launches = 1;
  sim::DeviceSpec dev = sim::gtx680();
  dev.cross_node_gbps = 0.0;  // uniform memory: sharding is free
  const auto base = perf::model_time_threads(dev, st, 4);
  const auto sharded = perf::model_time_sharded(dev, st, 4, 4, 1 << 20);
  EXPECT_DOUBLE_EQ(base.total_s, sharded.total_s);
  // shards <= 1 collapses too, even with a slow interconnect.
  dev.cross_node_gbps = 1.0;
  const auto one = perf::model_time_sharded(dev, st, 4, 1, 1 << 20);
  EXPECT_DOUBLE_EQ(base.total_s, one.total_s);
}

TEST(ShardModel, SlowInterconnectChargesHaloTraffic) {
  sim::KernelStats st;
  st.global_load_bytes = 1 << 26;
  st.global_store_bytes = 1 << 22;
  st.flops = 1 << 20;  // memory-bound so mem_s drives total_s
  st.kernel_launches = 1;
  sim::DeviceSpec dev = sim::gtx680();
  dev.cross_node_gbps = dev.mem_bandwidth_gbps / 8.0;
  const auto base = perf::model_time_threads(dev, st, 4);
  const auto two = perf::model_time_sharded(dev, st, 4, 2, 1 << 24);
  const auto four = perf::model_time_sharded(dev, st, 4, 4, 1 << 24);
  EXPECT_GT(two.mem_s, base.mem_s);
  // The halo is pulled concurrently by all domains: more shards, smaller
  // per-domain share of the penalty.
  EXPECT_LT(four.mem_s, two.mem_s);
  EXPECT_GE(four.mem_s, base.mem_s);
  // An interconnect as fast as local memory is not a bottleneck.
  dev.cross_node_gbps = dev.mem_bandwidth_gbps;
  const auto fast = perf::model_time_sharded(dev, st, 4, 2, 1 << 24);
  EXPECT_DOUBLE_EQ(base.total_s, fast.total_s);
}

}  // namespace
}  // namespace yaspmv
