// Simulator substrate tests: dispatch ordering, barriers/phases, shared
// memory accounting, adjacent synchronization, counters and the vector
// cache model.
#include "yaspmv/sim/dispatch.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "yaspmv/sim/adjacent.hpp"
#include "yaspmv/sim/coalescing.hpp"

namespace yaspmv {
namespace {

TEST(Device, Presets) {
  const auto d680 = sim::gtx680();
  const auto d480 = sim::gtx480();
  EXPECT_EQ(d680.name, "GTX680");
  EXPECT_EQ(d480.name, "GTX480");
  EXPECT_GT(d680.peak_gflops_sp, d480.peak_gflops_sp);
  EXPECT_GT(d680.tex_cache_per_sm, d480.tex_cache_per_sm);
  EXPECT_GT(d480.vector_cache_bytes(true), d480.vector_cache_bytes(false));
}

TEST(Dispatch, RunsEveryWorkgroupInOrderSequentially) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 17;
  lc.workgroup_size = 4;
  std::vector<int> order;
  sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    order.push_back(wg.wg_id());
  });
  std::vector<int> want(17);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(Dispatch, PhaseVisitsEveryThread) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 2;
  lc.workgroup_size = 8;
  std::vector<int> counts(2, 0);
  auto st = sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    wg.phase([&](int t) {
      (void)t;
      counts[static_cast<std::size_t>(wg.wg_id())]++;
    });
    wg.phase([&](int) {});
  });
  EXPECT_EQ(counts, (std::vector<int>{8, 8}));
  EXPECT_EQ(st.barriers, 4u);  // 2 phases x 2 workgroups
  EXPECT_EQ(st.kernel_launches, 1u);
}

TEST(Dispatch, SharedMemoryLimitEnforced) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = 1;
  const auto dev = sim::gtx680();
  EXPECT_THROW(sim::launch(dev, lc,
                           [&](sim::WorkgroupCtx& wg) {
                             wg.shared_array<double>(
                                 dev.shared_mem_per_workgroup, bytes::kValue);
                           }),
               sim::SimError);
}

TEST(Dispatch, SharedMemoryChargedByDeviceBytes) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = 1;
  sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    wg.shared_array<double>(100, bytes::kValue);  // host doubles, device floats
    EXPECT_EQ(wg.device_shared_bytes(), 400u);
    wg.shared_array<int>(10, 0);  // register-modeled: free
    EXPECT_EQ(wg.device_shared_bytes(), 400u);
  });
}

TEST(Dispatch, SharedArrayZeroInitialized) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 3;
  lc.workgroup_size = 2;
  sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    auto a = wg.shared_array<double>(16, bytes::kValue);
    for (double v : a) EXPECT_EQ(v, 0.0);
    a[0] = 42.0;  // must not leak into the next workgroup
  });
}

TEST(Dispatch, InvalidWorkgroupSizeThrows) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = 0;
  EXPECT_THROW(sim::launch(sim::gtx680(), lc, [](sim::WorkgroupCtx&) {}),
               sim::SimError);
  lc.workgroup_size = 4096;
  EXPECT_THROW(sim::launch(sim::gtx680(), lc, [](sim::WorkgroupCtx&) {}),
               sim::SimError);
}

TEST(Dispatch, LogicalIdsCountAtomics) {
  sim::LaunchConfig lc;
  lc.num_workgroups = 10;
  lc.workgroup_size = 1;
  lc.logical_ids = true;
  std::vector<int> ids;
  auto st = sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    ids.push_back(wg.wg_id());
  });
  EXPECT_EQ(st.atomic_ops, 10u);
  std::vector<int> want(10);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(ids, want);  // ticket order == dispatch order
}

TEST(Counters, StridedLoadInflatesTraffic) {
  sim::KernelStats st;
  st.add_coalesced_load(100, 4);
  EXPECT_EQ(st.global_load_bytes, 400u);
  sim::KernelStats st2;
  st2.add_strided_load(100, 4, 64);  // 64-byte stride -> 64 bytes/element
  EXPECT_EQ(st2.global_load_bytes, 6400u);
  sim::KernelStats st3;
  st3.add_strided_load(100, 4, 4096);  // capped at the 128B transaction
  EXPECT_EQ(st3.global_load_bytes, 12800u);
}

TEST(Counters, WarpWorkDivergence) {
  sim::KernelStats st;
  std::size_t balanced[4] = {5, 5, 5, 5};
  st.add_warp_work(balanced, 4);
  EXPECT_DOUBLE_EQ(st.divergence_factor(), 1.0);
  std::size_t skewed[4] = {20, 0, 0, 0};
  st.add_warp_work(skewed, 4);
  // total ideal = 40, serialized = 20 + 80.
  EXPECT_DOUBLE_EQ(st.divergence_factor(), 100.0 / 40.0);
}

TEST(Counters, VectorCacheHitsAndMisses) {
  sim::KernelStats st;
  sim::VectorCacheSim vc(1024, 32, 4);  // 32 lines of 8 elements
  vc.access(0, st);   // miss
  vc.access(1, st);   // hit (same line)
  vc.access(7, st);   // hit
  vc.access(8, st);   // miss (next line)
  vc.access(0, st);   // hit (still resident)
  vc.access(256, st); // miss, conflicts with line 0 (direct-mapped)
  vc.access(0, st);   // miss again (evicted)
  EXPECT_EQ(st.vector_misses, 4u);
  EXPECT_EQ(st.vector_hits, 3u);
  EXPECT_EQ(st.global_load_bytes, 4u * 32u);
  EXPECT_NEAR(st.vector_hit_rate(), 3.0 / 7.0, 1e-12);
}

TEST(Adjacent, PublishWaitRoundTrip) {
  sim::AdjacentBuffer buf(4, 2, /*blocking=*/false);
  const double v[2] = {1.5, -2.5};
  buf.publish(0, std::span<const double>(v, 2));
  EXPECT_TRUE(buf.is_published(0));
  EXPECT_FALSE(buf.is_published(1));
  double out[2] = {0, 0};
  sim::KernelStats st;
  buf.wait(0, std::span<double>(out, 2), st);
  EXPECT_EQ(out[0], 1.5);
  EXPECT_EQ(out[1], -2.5);
}

TEST(Adjacent, NonBlockingWaitOnUnpublishedThrows) {
  sim::AdjacentBuffer buf(2, 1, /*blocking=*/false);
  double out[1];
  sim::KernelStats st;
  // A consumed-before-published Grp_sum entry is classified as a sync
  // failure (the predecessor workgroup died), not a resource error.
  EXPECT_THROW(buf.wait(1, std::span<double>(out, 1), st),
               yaspmv::SyncTimeout);
}

TEST(Adjacent, RejectsBadHeight) {
  EXPECT_THROW(sim::AdjacentBuffer(1, 0, false), sim::SimError);
  EXPECT_THROW(sim::AdjacentBuffer(1, 9, false), sim::SimError);
  EXPECT_NO_THROW(sim::AdjacentBuffer(1, 8, false));  // extended blocks
}

TEST(Adjacent, BlockingChainAcrossThreads) {
  // Workers chain sums through the buffer exactly like the kernel does:
  // wg X waits for X-1, adds 1, publishes.  The final entry must be N.
  const int N = 64;
  sim::AdjacentBuffer buf(static_cast<std::size_t>(N), 1, /*blocking=*/true);
  sim::LaunchConfig lc;
  lc.num_workgroups = N;
  lc.workgroup_size = 1;
  lc.workers = 4;
  sim::launch(sim::gtx680(), lc, [&](sim::WorkgroupCtx& wg) {
    double carry = 0.0;
    if (wg.wg_id() > 0) {
      buf.wait(static_cast<std::size_t>(wg.wg_id()) - 1,
               std::span<double>(&carry, 1), wg.stats());
    }
    const double v = carry + 1.0;
    buf.publish(static_cast<std::size_t>(wg.wg_id()),
                std::span<const double>(&v, 1));
  });
  double last = 0.0;
  sim::KernelStats st;
  buf.wait(static_cast<std::size_t>(N) - 1, std::span<double>(&last, 1), st);
  EXPECT_EQ(last, static_cast<double>(N));
}

TEST(Coalescing, TransactionCounting) {
  using sim::kInactiveLane;
  using sim::warp_transactions;
  // All 32 lanes in one 32B segment -> 1 transaction.
  std::vector<std::size_t> a(32);
  for (std::size_t i = 0; i < 32; ++i) a[i] = i;  // bytes 0..31
  EXPECT_EQ(warp_transactions(a), 1u);
  // Unit-stride 4B elements: 32 lanes x 4B = 128B = 4 segments of 32B.
  for (std::size_t i = 0; i < 32; ++i) a[i] = i * 4;
  EXPECT_EQ(warp_transactions(a), 4u);
  // Fully scattered: one transaction per lane.
  for (std::size_t i = 0; i < 32; ++i) a[i] = i * 4096;
  EXPECT_EQ(warp_transactions(a), 32u);
  // Predicated-off lanes do not count.
  for (std::size_t i = 1; i < 32; ++i) a[i] = kInactiveLane;
  a[0] = 12345;
  EXPECT_EQ(warp_transactions(a), 1u);
  for (auto& v : a) v = kInactiveLane;
  EXPECT_EQ(warp_transactions(a), 0u);
  // Larger segment size coalesces more.
  for (std::size_t i = 0; i < 32; ++i) a[i] = i * 4;
  EXPECT_EQ(warp_transactions(a, 128), 1u);
}

TEST(Coalescing, ChargeWarpLoadBytes) {
  sim::KernelStats st;
  std::vector<std::size_t> a(32);
  for (std::size_t i = 0; i < 32; ++i) a[i] = i * 64;  // every other segment
  sim::charge_warp_load(st, a);
  EXPECT_EQ(st.global_load_bytes, 32u * 32u);
}

TEST(Dispatch, PooledStatsMatchSequential) {
  sim::LaunchConfig seq;
  seq.num_workgroups = 32;
  seq.workgroup_size = 16;
  auto body = [&](sim::WorkgroupCtx& wg) {
    wg.phase([&](int) { wg.stats().flops += 3; });
    wg.stats().add_coalesced_load(10, 4);
  };
  auto a = sim::launch(sim::gtx680(), seq, body);
  sim::LaunchConfig par = seq;
  par.workers = 4;
  auto b = sim::launch(sim::gtx680(), par, body);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes);
  EXPECT_EQ(a.barriers, b.barriers);
}

}  // namespace
}  // namespace yaspmv
