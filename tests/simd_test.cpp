// SIMD kernel tests: the AVX2/FMA and portable segmented-sum primitives
// must agree to a 1-ulp-scaled tolerance (the kernels share one fixed
// reduction order; FMA removes intermediate roundings, so exact equality
// is not required), next_row_stop must match a naive bit scan, and the
// CpuSpmv fast path must be correct and bitwise-deterministic under each
// forced dispatch level, including the chunk-boundary edge cases.
#include "yaspmv/cpu/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/bitops.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

using cpu::simd::Level;

/// RAII guard: force a dispatch level for one test, restore after.
struct LevelGuard {
  Level saved;
  explicit LevelGuard(Level l) : saved(cpu::simd::active()) {
    cpu::simd::set_level(l);
  }
  ~LevelGuard() { cpu::simd::set_level(saved); }
};

bool close_ulps(double a, double b, double scale_hint) {
  const double scale =
      std::max({std::abs(a), std::abs(b), std::abs(scale_hint), 1.0});
  return std::abs(a - b) <=
         8 * std::numeric_limits<double>::epsilon() * scale;
}

TEST(NextRowStop, MatchesNaiveScan) {
  SplitMix64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next()) % 200;
    BitArray bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      bits.set(i, rng.next_double(0, 1) < 0.8);
    }
    const std::uint32_t* words = bits.words().data();
    for (std::size_t start = 0; start <= n; ++start) {
      std::size_t want = n;
      for (std::size_t i = start; i < n; ++i) {
        if (!bits.get(i)) {
          want = i;
          break;
        }
      }
      ASSERT_EQ(cpu::simd::next_row_stop(words, start, n), want)
          << "n=" << n << " start=" << start;
    }
  }
}

TEST(NextRowStop, CrossesWordBoundaries) {
  BitArray bits(100, true);  // all ones: no stop anywhere
  EXPECT_EQ(cpu::simd::next_row_stop(bits.words().data(), 0, 100), 100u);
  bits.set(63, false);
  EXPECT_EQ(cpu::simd::next_row_stop(bits.words().data(), 0, 100), 63u);
  EXPECT_EQ(cpu::simd::next_row_stop(bits.words().data(), 63, 100), 63u);
  EXPECT_EQ(cpu::simd::next_row_stop(bits.words().data(), 64, 100), 100u);
  // A stop past `end` must clamp to end.
  bits.set(99, false);
  EXPECT_EQ(cpu::simd::next_row_stop(bits.words().data(), 64, 90), 90u);
}

TEST(DotRange, PortableVsAvx2WithinUlps) {
  if (!cpu::simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  SplitMix64 rng(7);
  const std::size_t nx = 512;
  std::vector<real_t> x(nx), vals(300);
  std::vector<index_t> cols(300);
  for (auto& v : x) v = rng.next_double(-10, 10);
  for (auto& v : vals) v = rng.next_double(-10, 10);
  for (auto& ci : cols) {
    ci = static_cast<index_t>(rng.next() % nx);
  }
  // Every (offset, length) shape up to a few vector widths, so the quad
  // loop, the reduce and the tail are all exercised.
  for (std::size_t lo = 0; lo < 8; ++lo) {
    for (std::size_t len = 0; len <= 40; ++len) {
      const std::size_t hi = lo + len;
      const double p = cpu::simd::dot_range_portable(vals.data(), cols.data(),
                                                     x.data(), lo, hi);
      const double v = cpu::simd::dot_range_avx2(vals.data(), cols.data(),
                                                 x.data(), lo, hi);
      const double mag = static_cast<double>(len) * 100.0;
      ASSERT_TRUE(close_ulps(p, v, mag)) << "lo=" << lo << " len=" << len
                                         << " portable=" << p << " avx2=" << v;
    }
  }
}

TEST(DotDense, PortableVsAvx2WithinUlps) {
  if (!cpu::simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  SplitMix64 rng(11);
  std::vector<real_t> a(8), b(8);
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& v : a) v = rng.next_double(-5, 5);
    for (auto& v : b) v = rng.next_double(-5, 5);
    for (std::size_t w = 1; w <= 8; ++w) {
      const double p = cpu::simd::dot_dense_portable(a.data(), b.data(), w);
      const double v = cpu::simd::dot_dense_avx2(a.data(), b.data(), w);
      ASSERT_TRUE(close_ulps(p, v, 200.0)) << "w=" << w;
    }
  }
}

TEST(SimdDispatch, EnvAndSetLevel) {
  const Level saved = cpu::simd::active();
  cpu::simd::set_level(Level::kPortable);
  EXPECT_EQ(cpu::simd::active(), Level::kPortable);
  cpu::simd::set_level(Level::kAvx2);
  if (cpu::simd::cpu_has_avx2()) {
    EXPECT_EQ(cpu::simd::active(), Level::kAvx2);
  } else {
    EXPECT_EQ(cpu::simd::active(), Level::kPortable);  // request ignored
  }
  EXPECT_STREQ(cpu::simd::to_string(Level::kPortable), "portable");
  EXPECT_STREQ(cpu::simd::to_string(Level::kAvx2), "avx2");
  cpu::simd::set_level(saved);
}

// ---- CpuSpmv under forced dispatch levels -------------------------------

std::shared_ptr<const core::Bccoo> build(const fmt::Coo& A,
                                         core::FormatConfig fc = {}) {
  return std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc));
}

std::vector<real_t> run_spmv(const fmt::Coo& A, unsigned threads,
                             core::FormatConfig fc = {}) {
  SplitMix64 rng(0xBEEF);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  cpu::CpuSpmv eng(build(A, fc), threads);
  eng.spmv(x, y);
  return y;
}

void expect_levels_agree(const fmt::Coo& A, unsigned threads,
                         const std::string& what) {
  std::vector<real_t> want(static_cast<std::size_t>(A.rows));
  {
    SplitMix64 rng(0xBEEF);
    std::vector<real_t> x(static_cast<std::size_t>(A.cols));
    for (auto& v : x) v = rng.next_double(-1, 1);
    fmt::Csr::from_coo(A).spmv(x, want);
  }
  std::vector<real_t> portable, vec;
  {
    LevelGuard g(Level::kPortable);
    portable = run_spmv(A, threads);
  }
  {
    LevelGuard g(Level::kAvx2);
    vec = run_spmv(A, threads);
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(close_ulps(portable[i], vec[i], std::abs(want[i]) * 64))
        << what << " levels disagree at row " << i << ": " << portable[i]
        << " vs " << vec[i];
    ASSERT_NEAR(portable[i], want[i],
                1e-9 * std::max(1.0, std::abs(want[i])))
        << what << " wrong result at row " << i;
  }
}

class SimdSpmv : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimdSpmv, LevelsAgreeAcrossShapes) {
  const unsigned threads = GetParam();
  // Long segments (the SIMD piece path) and short power-law segments (the
  // single-pass path) both appear across these generators.
  expect_levels_agree(gen::stencil2d(24, 24, false, 1), threads, "stencil");
  expect_levels_agree(gen::powerlaw(700, 700, 5, 2.2, 0.4, 2), threads,
                      "powerlaw");
  expect_levels_agree(gen::random_scattered(400, 400, 7, 9), threads,
                      "scattered");
}

TEST_P(SimdSpmv, ChunkEdgeCases) {
  const unsigned threads = GetParam();
  // nnz < threads: more workers than non-zero blocks.
  expect_levels_agree(
      fmt::Coo::from_triplets(4, 4, {0, 2}, {1, 3}, {2.0, -3.0}), threads,
      "nnz<threads");
  // Empty rows between populated ones.
  expect_levels_agree(
      fmt::Coo::from_triplets(6, 6, {0, 0, 5, 5}, {0, 5, 0, 5},
                              {1.0, 2.0, 3.0, 4.0}),
      threads, "empty rows");
  // A single open segment spanning every chunk: one dense row.
  std::vector<index_t> ri(64, 0), ci(64);
  std::vector<real_t> v(64);
  for (int i = 0; i < 64; ++i) {
    ci[static_cast<std::size_t>(i)] = i;
    v[static_cast<std::size_t>(i)] = 1.0 / (1 + i);
  }
  expect_levels_agree(fmt::Coo::from_triplets(1, 64, ri, ci, v), threads,
                      "one dense row");
}

INSTANTIATE_TEST_SUITE_P(Threads, SimdSpmv, ::testing::Values(1u, 3u, 8u));

TEST(SimdSpmv, DeterministicAtFixedThreadCount) {
  const auto A = gen::powerlaw(600, 600, 6, 2.1, 0.3, 5);
  for (Level l : {Level::kPortable, Level::kAvx2}) {
    if (l == Level::kAvx2 && !cpu::simd::cpu_has_avx2()) continue;
    LevelGuard g(l);
    const auto first = run_spmv(A, 4);
    for (int rep = 0; rep < 3; ++rep) {
      const auto again = run_spmv(A, 4);
      ASSERT_EQ(std::memcmp(first.data(), again.data(),
                            first.size() * sizeof(real_t)),
                0)
          << "non-deterministic at level " << cpu::simd::to_string(l);
    }
  }
}

}  // namespace
}  // namespace yaspmv
