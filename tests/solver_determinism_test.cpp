// Solver determinism suite: at a fixed thread count and dispatch level the
// fused CG / BiCGStab loops must be bitwise reproducible run to run (the
// SpMV chunk grid depends on the thread count, so cross-count bit equality
// is NOT promised — cross-count agreement is checked to solver tolerance
// instead, and the vector kernels' stronger cross-count bitwise contract is
// certified in vecops_test).  The fused loops must also agree with the
// preserved pre-fusion reference loops (solver::serial) to solver accuracy.
// Runs under TSan (label `tsan`) to certify the pooled solver pipeline.
#include "yaspmv/solvers/solvers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

/// An SPD system with genuine block/slice structure: a generated FEM mesh
/// symmetrized by the suite's Gershgorin shift.
fmt::Coo spd_matrix() {
  return gen::make_spd(gen::fem_mesh(600, 12, 3, 0.05, 0x5eed));
}

/// Nonsymmetric diagonally dominant matrix for BiCGStab.
fmt::Coo nonsym_matrix() {
  SplitMix64 rng(0xD0);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const index_t n = 700;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i), ci.push_back(i), v.push_back(9.0 + rng.next_double());
    for (int k = 0; k < 4; ++k) {
      const auto c = static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (c != i) {
        ri.push_back(i), ci.push_back(c), v.push_back(rng.next_double(-1, 1));
      }
    }
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

/// Symmetric tridiagonal with one strongly dominant diagonal entry: the
/// wide spectral gap makes power iteration converge in a handful of steps
/// (the Gershgorin-shifted matrices cluster their spectrum, which is
/// exactly the slow case for the method).
fmt::Coo eigen_matrix() {
  const index_t n = 400;
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i), ci.push_back(i);
    v.push_back(i + 1 == n ? 50.0 : 2.0 + 0.001 * i);
    if (i > 0) ri.push_back(i), ci.push_back(i - 1), v.push_back(0.5);
    if (i + 1 < n) ri.push_back(i), ci.push_back(i + 1), v.push_back(0.5);
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

std::vector<real_t> rhs_for(solver::CpuOperator& op) {
  SplitMix64 rng(0x5eed);
  std::vector<real_t> xs(static_cast<std::size_t>(op.cols()));
  for (auto& e : xs) e = rng.next_double(-1, 1);
  std::vector<real_t> b(static_cast<std::size_t>(op.rows()));
  op.apply(xs, b);
  return b;
}

std::vector<unsigned> thread_counts() {
  std::vector<unsigned> t{1, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) t.push_back(hw);
  return t;
}

/// Two independent solves (fresh operator, fresh buffers) at the same
/// thread count must produce bit-identical iterates and reports.
template <class Solve>
void expect_bitwise_repeatable(const fmt::Coo& A, Solve&& solve,
                               const char* what) {
  for (const unsigned threads : thread_counts()) {
    std::vector<real_t> x1, x2;
    solver::SolveReport r1, r2;
    {
      solver::CpuOperator op(A, {}, threads);
      const auto b = rhs_for(op);
      x1.assign(static_cast<std::size_t>(A.rows), 0.0);
      r1 = solve(op, b, x1, threads);
    }
    {
      solver::CpuOperator op(A, {}, threads);
      const auto b = rhs_for(op);
      x2.assign(static_cast<std::size_t>(A.rows), 0.0);
      r2 = solve(op, b, x2, threads);
    }
    EXPECT_EQ(r1.iterations, r2.iterations) << what << " threads=" << threads;
    EXPECT_EQ(r1.relative_residual, r2.relative_residual)
        << what << " threads=" << threads;
    ASSERT_EQ(0,
              std::memcmp(x1.data(), x2.data(), x1.size() * sizeof(real_t)))
        << what << " threads=" << threads;
  }
}

solver::SolveOptions opts(unsigned threads) {
  solver::SolveOptions o;
  o.tolerance = 1e-11;
  o.max_iterations = 2000;
  o.threads = threads;
  return o;
}

TEST(SolverDeterminism, CgBitwiseRepeatablePerThreadCount) {
  expect_bitwise_repeatable(
      spd_matrix(),
      [](solver::CpuOperator& op, std::span<const real_t> b,
         std::span<real_t> x, unsigned threads) {
        return solver::cg(op, b, x, opts(threads));
      },
      "cg");
}

TEST(SolverDeterminism, BicgstabBitwiseRepeatablePerThreadCount) {
  expect_bitwise_repeatable(
      nonsym_matrix(),
      [](solver::CpuOperator& op, std::span<const real_t> b,
         std::span<real_t> x, unsigned threads) {
        return solver::bicgstab(op, b, x, opts(threads));
      },
      "bicgstab");
}

// Different thread counts legitimately round differently inside the SpMV
// (chunked carries), but every count must land on the same solution to
// solver accuracy.
TEST(SolverDeterminism, ThreadCountsAgreeToTolerance) {
  const auto A = spd_matrix();
  std::vector<std::vector<real_t>> sols;
  for (const unsigned threads : thread_counts()) {
    solver::CpuOperator op(A, {}, threads);
    const auto b = rhs_for(op);
    std::vector<real_t> x(static_cast<std::size_t>(A.rows), 0.0);
    const auto rep = solver::cg(op, b, x, opts(threads));
    EXPECT_TRUE(rep.converged) << "threads=" << threads;
    sols.push_back(std::move(x));
  }
  for (std::size_t s = 1; s < sols.size(); ++s) {
    for (std::size_t i = 0; i < sols[0].size(); ++i) {
      ASSERT_NEAR(sols[s][i], sols[0][i], 1e-8) << "s=" << s << " i=" << i;
    }
  }
}

// The fused loops are the same numerical algorithm as the preserved
// pre-fusion reference: identical iteration counts modulo rounding, and
// solutions agreeing to solver accuracy.
TEST(SolverDeterminism, FusedMatchesSerialReference) {
  {
    const auto A = spd_matrix();
    solver::CpuOperator op(A, {}, 1);
    const auto b = rhs_for(op);
    std::vector<real_t> xf(static_cast<std::size_t>(A.rows), 0.0);
    std::vector<real_t> xs(static_cast<std::size_t>(A.rows), 0.0);
    const auto rf = solver::cg(op, b, xf, opts(1));
    const auto rs = solver::serial::cg(op, b, xs, opts(1));
    EXPECT_TRUE(rf.converged);
    EXPECT_TRUE(rs.converged);
    EXPECT_NEAR(static_cast<double>(rf.iterations),
                static_cast<double>(rs.iterations), 2.0);
    for (std::size_t i = 0; i < xf.size(); ++i) {
      ASSERT_NEAR(xf[i], xs[i], 1e-8) << i;
    }
  }
  {
    const auto A = nonsym_matrix();
    solver::CpuOperator op(A, {}, 1);
    const auto b = rhs_for(op);
    std::vector<real_t> xf(static_cast<std::size_t>(A.rows), 0.0);
    std::vector<real_t> xs(static_cast<std::size_t>(A.rows), 0.0);
    const auto rf = solver::bicgstab(op, b, xf, opts(1));
    const auto rs = solver::serial::bicgstab(op, b, xs, opts(1));
    EXPECT_TRUE(rf.converged);
    EXPECT_TRUE(rs.converged);
    for (std::size_t i = 0; i < xf.size(); ++i) {
      ASSERT_NEAR(xf[i], xs[i], 1e-8) << i;
    }
  }
}

TEST(SolverDeterminism, PowerIterationRepeatableAndMatchesSerial) {
  const auto A = eigen_matrix();
  for (const unsigned threads : thread_counts()) {
    solver::CpuOperator op(A, {}, threads);
    std::vector<real_t> v1(static_cast<std::size_t>(A.rows), 1.0);
    std::vector<real_t> v2(static_cast<std::size_t>(A.rows), 1.0);
    const auto r1 = solver::power_iteration(op, v1, 1e-9, 1000, threads);
    const auto r2 = solver::power_iteration(op, v2, 1e-9, 1000, threads);
    EXPECT_EQ(r1.eigenvalue, r2.eigenvalue) << "threads=" << threads;
    EXPECT_EQ(r1.iterations, r2.iterations) << "threads=" << threads;
    ASSERT_EQ(0,
              std::memcmp(v1.data(), v2.data(), v1.size() * sizeof(real_t)))
        << "threads=" << threads;
  }
  solver::CpuOperator op(A, {}, 1);
  std::vector<real_t> vf(static_cast<std::size_t>(A.rows), 1.0);
  std::vector<real_t> vs(static_cast<std::size_t>(A.rows), 1.0);
  const auto rf = solver::power_iteration(op, vf, 1e-9, 1000, 1);
  const auto rs = solver::serial::power_iteration(op, vs, 1e-9, 1000);
  EXPECT_TRUE(rf.converged);
  EXPECT_NEAR(rf.eigenvalue, rs.eigenvalue,
              1e-9 * std::abs(rs.eigenvalue) + 1e-12);
}

}  // namespace
}  // namespace yaspmv
