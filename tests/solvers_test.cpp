// Solver tests: CG / BiCGSTAB / Jacobi / power iteration over every
// operator adapter, on problems with known solutions.
#include "yaspmv/solvers/solvers.hpp"

#include <gtest/gtest.h>

#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

/// SPD tridiagonal Poisson operator [-1, 2, -1].
fmt::Coo poisson1d(index_t n) {
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) {
      ri.push_back(i);
      ci.push_back(i - 1);
      v.push_back(-1.0);
    }
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(2.0);
    if (i + 1 < n) {
      ri.push_back(i);
      ci.push_back(i + 1);
      v.push_back(-1.0);
    }
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

/// Nonsymmetric diagonally dominant matrix.
fmt::Coo nonsym(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(8.0 + rng.next_double());
    for (int k = 0; k < 3; ++k) {
      const auto c = static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (c != i) {
        ri.push_back(i);
        ci.push_back(c);
        v.push_back(rng.next_double(-1, 1));
      }
    }
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

template <class Op>
void check_cg_solves_poisson(Op& A, index_t n, const std::string& what) {
  // b = A * ones, so the exact solution is ones.
  std::vector<real_t> ones(static_cast<std::size_t>(n), 1.0),
      b(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n), 0.0);
  A.apply(ones, b);
  const auto rep = solver::cg(A, b, x);
  EXPECT_TRUE(rep.converged) << what;
  EXPECT_LT(rep.relative_residual, 1e-9) << what;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], 1.0, 1e-6) << what << " i=" << i;
  }
}

TEST(Solvers, CgOnEveryBackend) {
  const index_t n = 400;
  const auto A = poisson1d(n);
  {
    solver::CsrOperator op(fmt::Csr::from_coo(A));
    check_cg_solves_poisson(op, n, "csr");
  }
  {
    solver::CpuOperator op(A, {}, 3);
    check_cg_solves_poisson(op, n, "cpu");
  }
  {
    core::FormatConfig fc;
    fc.block_h = 2;
    solver::SimOperator op(A, fc, {}, sim::gtx680());
    check_cg_solves_poisson(op, n, "sim");
    EXPECT_GT(op.applies(), 1u);
    EXPECT_GT(op.stats().global_load_bytes, 0u);
  }
}

TEST(Solvers, CgReportsNonConvergenceOnTinyBudget) {
  const auto A = poisson1d(500);
  solver::CsrOperator op(fmt::Csr::from_coo(A));
  std::vector<real_t> b(500, 1.0), x(500, 0.0);
  solver::SolveOptions opt;
  opt.max_iterations = 3;
  const auto rep = solver::cg(op, b, x, opt);
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.iterations, 3);
  EXPECT_GT(rep.relative_residual, 0.0);
}

TEST(Solvers, PcgConvergesFasterOnIllScaledSystem) {
  // SPD system with a wildly varying diagonal: D + small symmetric
  // perturbation.  Jacobi preconditioning should cut iterations.
  const index_t n = 300;
  SplitMix64 rng(42);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(std::pow(10.0, rng.next_double(0, 4)));  // 1 .. 10^4
  }
  for (index_t i = 0; i + 1 < n; ++i) {
    ri.push_back(i);
    ci.push_back(i + 1);
    v.push_back(0.3);
    ri.push_back(i + 1);
    ci.push_back(i);
    v.push_back(0.3);
  }
  const auto A = fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                         std::move(v));
  const auto diag = solver::extract_diagonal(A);
  solver::CsrOperator op(fmt::Csr::from_coo(A));
  std::vector<real_t> sol(static_cast<std::size_t>(n), 1.0),
      b(static_cast<std::size_t>(n));
  op.apply(sol, b);
  solver::SolveOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 5000;

  std::vector<real_t> x1(static_cast<std::size_t>(n), 0.0);
  const auto plain = solver::cg(op, b, x1, opt);
  std::vector<real_t> x2(static_cast<std::size_t>(n), 0.0);
  const auto pre = solver::pcg_jacobi(op, diag, b, x2, opt);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  for (std::size_t i = 0; i < x2.size(); ++i) ASSERT_NEAR(x2[i], 1.0, 1e-5);
}

TEST(Solvers, PcgRejectsZeroDiagonal) {
  const auto A = fmt::Coo::from_triplets(2, 2, {0, 1}, {1, 0}, {1.0, 1.0});
  const auto diag = solver::extract_diagonal(A);
  solver::CsrOperator op(fmt::Csr::from_coo(A));
  std::vector<real_t> b(2, 1.0), x(2, 0.0);
  EXPECT_THROW(solver::pcg_jacobi(op, diag, b, x), std::invalid_argument);
}

TEST(Solvers, BicgstabOnNonsymmetric) {
  const index_t n = 300;
  const auto A = nonsym(n, 5);
  solver::CpuOperator op(A, {}, 2);
  SplitMix64 rng(6);
  std::vector<real_t> sol(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n), 0.0);
  for (auto& s : sol) s = rng.next_double(-1, 1);
  op.apply(sol, b);
  const auto rep = solver::bicgstab(op, b, x);
  EXPECT_TRUE(rep.converged);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], sol[i], 1e-6) << i;
  }
}

TEST(Solvers, JacobiOnDiagonallyDominant) {
  const index_t n = 200;
  const auto A = nonsym(n, 7);
  const auto csr = fmt::Csr::from_coo(A);
  std::vector<real_t> diag(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    for (index_t p = csr.row_ptr[static_cast<std::size_t>(r)];
         p < csr.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      if (csr.col_idx[static_cast<std::size_t>(p)] == r) {
        diag[static_cast<std::size_t>(r)] =
            csr.vals[static_cast<std::size_t>(p)];
      }
    }
  }
  solver::CsrOperator op(csr);
  std::vector<real_t> sol(static_cast<std::size_t>(n), 2.0),
      b(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n), 0.0);
  op.apply(sol, b);
  solver::SolveOptions opt;
  opt.tolerance = 1e-8;
  opt.max_iterations = 5000;
  const auto rep = solver::jacobi(op, diag, b, x, opt);
  EXPECT_TRUE(rep.converged);
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_NEAR(x[i], 2.0, 1e-5);
}

TEST(Solvers, PowerIterationFindsDominantEigenvalue) {
  // Diagonal matrix: dominant eigenvalue is the largest diagonal entry.
  const index_t n = 50;
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(static_cast<real_t>(i + 1));
  }
  const auto A = fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                         std::move(v));
  solver::CpuOperator op(A);
  std::vector<real_t> vec(static_cast<std::size_t>(n), 1.0);
  const auto rep = solver::power_iteration(op, vec, 1e-12, 20000);
  EXPECT_TRUE(rep.converged);
  EXPECT_NEAR(rep.eigenvalue, 50.0, 1e-6);
  // Eigenvector concentrates on the last coordinate.
  EXPECT_NEAR(std::abs(vec[49]), 1.0, 1e-4);
}

TEST(Solvers, PowerIterationPoissonExtremalEigenvalue) {
  // 1D Poisson eigenvalues: 2 - 2cos(k*pi/(n+1)); max ~ 4 for large n.
  const index_t n = 100;
  const auto A = poisson1d(n);
  solver::CsrOperator op(fmt::Csr::from_coo(A));
  SplitMix64 rng(9);
  std::vector<real_t> vec(static_cast<std::size_t>(n));
  for (auto& x : vec) x = rng.next_double(-1, 1);
  const auto rep = solver::power_iteration(op, vec, 1e-10, 50000);
  const double expect =
      2.0 - 2.0 * std::cos(static_cast<double>(n) * M_PI /
                           static_cast<double>(n + 1));
  EXPECT_NEAR(rep.eigenvalue, expect, 1e-4);
}

TEST(Solvers, RejectsNonSquare) {
  const auto A = fmt::Coo::from_triplets(2, 3, {0}, {0}, {1.0});
  solver::CsrOperator op(fmt::Csr::from_coo(A));
  std::vector<real_t> b(2), x(2);
  EXPECT_THROW(solver::cg(op, b, x), std::invalid_argument);
  EXPECT_THROW(solver::bicgstab(op, b, x), std::invalid_argument);
}

}  // namespace
}  // namespace yaspmv
