// Counter-accounting tests: the simulated kernels must charge traffic,
// barriers and synchronization in the amounts the paper's analysis
// predicts — these invariants are what make the performance model's
// figure shapes meaningful.
#include <gtest/gtest.h>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

struct RunResult {
  sim::KernelStats stats;
  int launches;
};

RunResult run_once(const fmt::Coo& A, const core::FormatConfig& fc,
                   const core::ExecConfig& ec) {
  core::SpmvEngine eng(A, fc, ec, sim::gtx680());
  SplitMix64 rng(1);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  const auto r = eng.run(x, y);
  return {r.stats, r.launches};
}

fmt::Coo fem_matrix() { return gen::fem_mesh(2000, 30, 2, 0.03, 0x57A7); }

TEST(Stats, ValueTrafficMatchesPaddedBlocks) {
  const auto A = fem_matrix();
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  core::ExecConfig ec;
  core::SpmvEngine eng(A, fc, ec, sim::gtx680());
  const auto& p = eng.plan();
  const auto r = run_once(A, fc, ec);
  // Lower bound: every padded block's values are streamed exactly once
  // (4 bytes/element on device).
  const std::size_t value_bytes = p.padded_blocks * 2 * 2 * bytes::kValue;
  EXPECT_GE(r.stats.global_load_bytes, value_bytes);
  // Upper bound: values + cols + flags + aux + vector misses can't blow up
  // beyond a small multiple.
  EXPECT_LT(r.stats.global_load_bytes, 4 * value_bytes);
}

TEST(Stats, ShortColumnsSaveExactlyTwoBytesPerBlock) {
  const auto A = fem_matrix();
  core::FormatConfig fc;
  core::ExecConfig with_u16;
  with_u16.short_col_index = true;
  core::ExecConfig with_int;
  with_int.short_col_index = false;
  const auto a = run_once(A, fc, with_u16);
  const auto b = run_once(A, fc, with_int);
  core::SpmvEngine eng(A, fc, with_u16, sim::gtx680());
  EXPECT_EQ(b.stats.global_load_bytes - a.stats.global_load_bytes,
            eng.plan().padded_blocks * 2);
}

TEST(Stats, BitFlagWordTypeChangesFlagTraffic) {
  const auto A = fem_matrix();
  core::ExecConfig ec;
  ec.thread_tile = 4;  // one u8 word covers 8 >= tile bits either way
  core::FormatConfig f8;
  f8.bf_word = BitFlagWord::kU8;
  core::FormatConfig f32;
  f32.bf_word = BitFlagWord::kU32;
  const auto a = run_once(A, f8, ec);
  const auto b = run_once(A, f32, ec);
  // u32 words load 4 bytes per tile instead of 1.
  EXPECT_GT(b.stats.global_load_bytes, a.stats.global_load_bytes);
}

TEST(Stats, SkipScanRemovesBarriers) {
  // Diagonal matrix: every thread tile has a row stop -> scan skippable.
  std::vector<index_t> ri(4096), ci(4096);
  std::vector<real_t> v(4096, 1.0);
  for (index_t i = 0; i < 4096; ++i) {
    ri[static_cast<std::size_t>(i)] = ci[static_cast<std::size_t>(i)] = i;
  }
  const auto A = fmt::Coo::from_triplets(4096, 4096, std::move(ri),
                                         std::move(ci), std::move(v));
  core::FormatConfig fc;
  core::ExecConfig on;
  on.skip_scan_opt = true;
  core::ExecConfig off;
  off.skip_scan_opt = false;
  const auto a = run_once(A, fc, on);
  const auto b = run_once(A, fc, off);
  EXPECT_LT(a.stats.barriers, b.stats.barriers);
  EXPECT_GT(b.stats.flops, a.stats.flops);  // the scan's adds
}

TEST(Stats, AdjacentSyncSavesALaunch) {
  const auto A = fem_matrix();
  core::FormatConfig fc;
  core::ExecConfig adj;
  adj.adjacent_sync = true;
  core::ExecConfig glob;
  glob.adjacent_sync = false;
  const auto a = run_once(A, fc, adj);
  const auto b = run_once(A, fc, glob);
  EXPECT_EQ(a.stats.kernel_launches, 1u);
  EXPECT_EQ(b.stats.kernel_launches, 2u);
  EXPECT_EQ(a.launches, 1);
  EXPECT_EQ(b.launches, 2);
}

TEST(Stats, TextureToggleChangesVectorHitRate) {
  // Scattered matrix: the smaller no-texture cache must miss more.
  const auto A = gen::random_scattered(20000, 20000, 8, 0xCAFE);
  core::FormatConfig fc;
  core::ExecConfig tex;
  tex.use_texture = true;
  core::ExecConfig notex;
  notex.use_texture = false;
  const auto a = run_once(A, fc, tex);
  const auto b = run_once(A, fc, notex);
  EXPECT_GE(a.stats.vector_hit_rate(), b.stats.vector_hit_rate());
}

TEST(Stats, SlicingImprovesVectorLocalityOnWideMatrix) {
  // Wide LP-style rows: slicing narrows the active vector window.
  const auto A = gen::wide_rows(64, 300000, 2000, 0x11);
  core::ExecConfig ec;
  core::FormatConfig one;
  core::FormatConfig sliced;
  sliced.slices = 16;
  const auto a = run_once(A, one, ec);
  const auto b = run_once(A, sliced, ec);
  EXPECT_GT(b.stats.vector_hit_rate(), a.stats.vector_hit_rate());
}

TEST(Stats, DeltaCompressionReducesColumnTraffic) {
  // Narrow matrix where every delta fits int16 and u16 is disabled:
  // compressed columns load 2 bytes instead of 4.
  const auto A = gen::fem_mesh(3000, 20, 1, 0.01, 0x22);
  core::FormatConfig fc;
  core::ExecConfig dc;
  dc.compress_col_delta = true;
  dc.short_col_index = false;
  core::ExecConfig nc;
  nc.compress_col_delta = false;
  nc.short_col_index = false;
  const auto a = run_once(A, fc, dc);
  const auto b = run_once(A, fc, nc);
  EXPECT_LT(a.stats.global_load_bytes, b.stats.global_load_bytes);
}

TEST(Stats, BalancedKernelHasNoDivergencePenalty) {
  const auto A = fem_matrix();
  const auto r = run_once(A, {}, {});
  EXPECT_DOUBLE_EQ(r.stats.divergence_factor(), 1.0);
}

TEST(Stats, CombineKernelChargedForBccooPlus) {
  const auto A = fem_matrix();
  core::FormatConfig one;
  core::FormatConfig plus;
  plus.slices = 4;
  core::ExecConfig ec;
  const auto a = run_once(A, one, ec);
  const auto b = run_once(A, plus, ec);
  EXPECT_EQ(b.stats.kernel_launches, a.stats.kernel_launches + 1);
  // Temp-buffer memset + combine traffic make BCCOO+ strictly heavier on
  // stores.
  EXPECT_GT(b.stats.global_store_bytes, a.stats.global_store_bytes);
}

}  // namespace
}  // namespace yaspmv
