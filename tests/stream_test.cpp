// Out-of-core streaming tests: the mmapped container (io/stream.hpp) and
// the tile-streaming SpMV (cpu/stream_spmv.hpp).
//
// Correctness contract: the streamed walk IS Bccoo::spmv_reference — same
// block order, same accumulation order — so streamed output is compared
// bitwise (memcmp) against the in-memory reference apply, and against the
// serial CSR oracle on power-of-two values where every association is
// exact.  Fault contract: a truncated, tampered or replaced-underneath
// file surfaces as a *typed* SpmvError (FormatInvalid / DataCorruption /
// IoError) — never a SIGBUS crash; the replaced-file case is additionally
// exercised in a forked child so a regression to process death fails the
// test instead of killing the suite.  Labeled `shard` (run under TSan by
// tools/run_sanitized_tests.sh).
#include "yaspmv/cpu/stream_spmv.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/binary.hpp"
#include "yaspmv/io/stream.hpp"
#include "yaspmv/serve/client.hpp"
#include "yaspmv/serve/server.hpp"
#include "yaspmv/util/rng.hpp"

// Sanitizer runtimes install their own SIGBUS machinery and forked
// children confuse their interceptors; the guard tests are skipped there
// (the plain build and the TSan-label pass still cover the logic).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define YASPMV_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define YASPMV_UNDER_SANITIZER 1
#endif
#endif

namespace yaspmv {
namespace {

namespace fs = std::filesystem;

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("yaspmv-stream-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string save(const core::Bccoo& f, const char* name = "m.bccoo") {
    const std::string path = (dir_ / name).string();
    io::save_bccoo_file(path, f);
    return path;
  }

  fs::path dir_;
};

std::vector<real_t> seeded(std::size_t n, std::uint64_t seed) {
  std::vector<real_t> v(n);
  SplitMix64 rng(seed);
  for (auto& x : v) x = rng.next_double(-1, 1);
  return v;
}

bool bitwise_equal(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

/// Sparse matrix with power-of-two values: exact at any association, so
/// streamed vs CSR comparisons are EXPECT_EQ on raw doubles.
fmt::Coo pow2_matrix(index_t n, std::uint64_t seed) {
  static constexpr double kVals[] = {1.0, -1.0, 0.5, -0.5, 0.25, -0.25};
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    for (int j = 0; j < 5; ++j) {
      ri.push_back(i);
      ci.push_back(static_cast<index_t>((i * 7 + j * 13 + 1) %
                                        static_cast<index_t>(n)));
      v.push_back(kVals[rng.next_below(6)]);
    }
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(1.0);
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

std::vector<real_t> pow2_x(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    const int e = static_cast<int>(rng.next_below(7)) - 3;
    v = std::ldexp(rng.next_below(2) ? 1.0 : -1.0, e);
  }
  return x;
}

// ---------------------------------------------------------------------------
// Bitwise correctness.

TEST_F(StreamTest, StreamedMatchesInMemoryReferenceBitwise) {
  std::vector<fmt::Coo> mats;
  mats.push_back(gen::stencil2d(24, 24, false, 1));
  mats.push_back(gen::powerlaw(700, 700, 5, 2.2, 0.4, 2));
  mats.push_back(gen::fem_mesh(500, 30, 3, 0.05, 3));
  core::FormatConfig scalar, blocked, sliced;
  blocked.block_w = 2;
  blocked.block_h = 2;
  sliced.slices = 4;
  int idx = 0;
  for (const auto& A : mats) {
    for (const auto& fc : {scalar, blocked, sliced}) {
      const auto f = core::Bccoo::build(A, fc);
      const auto path =
          save(f, ("m" + std::to_string(idx++) + ".bccoo").c_str());
      auto m = std::make_shared<const io::MappedBccoo>(path);
      cpu::CpuStreamSpmv eng(m);
      ASSERT_EQ(eng.rows(), f.rows);
      ASSERT_EQ(eng.cols(), f.cols);
      const auto x = seeded(static_cast<std::size_t>(f.cols), 42);
      std::vector<real_t> streamed(static_cast<std::size_t>(f.rows)),
          ref(static_cast<std::size_t>(f.rows));
      eng.spmv(x, streamed);
      f.spmv_reference(x, ref);
      ASSERT_TRUE(bitwise_equal(streamed, ref))
          << "matrix " << idx << " block_w=" << fc.block_w
          << " slices=" << fc.slices;
      EXPECT_GT(eng.streamed_bytes(), 0u);
    }
  }
}

TEST_F(StreamTest, StreamedMatchesCsrOracleBitwiseOnPow2Values) {
  const auto A = pow2_matrix(300, 0xC3);
  const auto f = core::Bccoo::build(A, {});
  auto m = std::make_shared<const io::MappedBccoo>(save(f));
  cpu::CpuStreamSpmv eng(m);
  const auto x = pow2_x(A.cols, 0xD4);
  std::vector<real_t> streamed(static_cast<std::size_t>(A.rows)),
      want(static_cast<std::size_t>(A.rows));
  eng.spmv(x, streamed);
  fmt::Csr::from_coo(A).spmv(x, want);
  ASSERT_EQ(streamed.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(streamed[i], want[i]) << "row " << i << " differs bitwise";
  }
}

TEST_F(StreamTest, RepeatApplyIsBitwiseReproducible) {
  const auto A = gen::powerlaw(600, 600, 6, 2.1, 0.3, 5);
  const auto f = core::Bccoo::build(A, {});
  auto m = std::make_shared<const io::MappedBccoo>(save(f));
  cpu::CpuStreamSpmv eng(m);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 7);
  std::vector<real_t> first(static_cast<std::size_t>(A.rows));
  eng.spmv(x, first);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<real_t> again(first.size());
    eng.spmv(x, again);
    ASSERT_TRUE(bitwise_equal(first, again)) << "rep " << rep;
  }
}

// ---------------------------------------------------------------------------
// Damaged containers fail typed at open.

TEST_F(StreamTest, TruncatedFileFailsTypedAtOpen) {
  const auto A = gen::stencil2d(20, 20, false, 1);
  const auto path = save(core::Bccoo::build(A, {}));
  const auto full = static_cast<off_t>(fs::file_size(path));
  // Cut at several depths: into the header, into the payload, and just
  // short of the trailing checksum.  Every cut must throw a typed
  // SpmvError from the constructor — no partial object, no signal.
  for (const off_t cut : {off_t{4}, off_t{12}, full / 2, full - 1}) {
    const std::string trunc = (dir_ / "trunc.bccoo").string();
    fs::copy_file(path, trunc, fs::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(trunc.c_str(), cut), 0);
    EXPECT_THROW(io::MappedBccoo m(trunc), SpmvError) << "cut at " << cut;
  }
}

TEST_F(StreamTest, MissingFileFailsTypedIoError) {
  EXPECT_THROW(io::MappedBccoo m((dir_ / "nope.bccoo").string()), IoError);
}

TEST_F(StreamTest, TamperedPayloadFailsChecksumAtOpen) {
  const auto A = gen::powerlaw(400, 400, 5, 2.2, 0.4, 9);
  const auto path = save(core::Bccoo::build(A, {}));
  const auto size = fs::file_size(path);
  // Flip one byte in the middle of the payload: the full-file FNV verify
  // at open must classify it as data corruption.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&b, 1);
  }
  EXPECT_THROW(io::MappedBccoo m(path), DataCorruption);
}

// ---------------------------------------------------------------------------
// File replaced underneath a live mapping: typed IoError, never SIGBUS.

TEST_F(StreamTest, ApplyAfterFileTruncatedUnderneathFailsTyped) {
#ifdef YASPMV_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizer runtimes own SIGBUS; covered by plain builds";
#else
  const auto A = gen::powerlaw(800, 800, 6, 2.2, 0.4, 11);
  const auto path = save(core::Bccoo::build(A, {}));
  auto m = std::make_shared<const io::MappedBccoo>(path);
  cpu::CpuStreamSpmv eng(m);
  const auto x = seeded(static_cast<std::size_t>(A.cols), 3);
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  eng.spmv(x, y);  // healthy apply first
  // Shrink the file while the mapping is live: the next apply touches
  // pages past EOF and must surface the SIGBUS as a typed IoError.
  ASSERT_EQ(::truncate(path.c_str(), 16), 0);
  EXPECT_THROW(eng.spmv(x, y), IoError);
#endif
}

TEST_F(StreamTest, ReplacedFileNeverKillsTheProcess) {
#ifdef YASPMV_UNDER_SANITIZER
  GTEST_SKIP() << "fork + sanitizer interceptors do not mix";
#else
  // Belt over the braces of the previous test: run the whole
  // map-truncate-apply sequence in a forked child.  If the guard ever
  // regresses to letting SIGBUS kill the process, the child dies on the
  // signal and the exit-status assertion below fails — the suite survives.
  const auto A = gen::stencil2d(30, 30, false, 1);
  const auto path = save(core::Bccoo::build(A, {}));
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    int code = 3;  // "no typed error surfaced"
    try {
      auto m = std::make_shared<const io::MappedBccoo>(path);
      cpu::CpuStreamSpmv eng(m);
      std::vector<real_t> x(static_cast<std::size_t>(A.cols), 1.0);
      std::vector<real_t> y(static_cast<std::size_t>(A.rows));
      if (::truncate(path.c_str(), 16) == 0) {
        eng.spmv(x, y);
      }
    } catch (const IoError&) {
      code = 0;  // the contract: typed IoError
    } catch (...) {
      code = 2;
    }
    ::_exit(code);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status))
      << "child killed by signal " << WTERMSIG(status)
      << " — SIGBUS escaped the guard";
  EXPECT_EQ(WEXITSTATUS(status), 0);
#endif
}

// ---------------------------------------------------------------------------
// Serving out-of-core: register-by-path end to end.

TEST_F(StreamTest, ServeRegisterByPathServesBitwiseCorrectApplies) {
  const auto a = pow2_matrix(96, 0xE5);
  const auto f = core::Bccoo::build(a, {});
  const auto path = save(f);

  serve::ServerOptions opt;
  opt.socket_path = (dir_ / "s.sock").string();
  opt.plan_cache_dir = (dir_ / "plans").string();
  opt.tune_on_register = false;
  serve::Server server(opt);
  server.start();

  serve::Client c(opt.socket_path);
  const auto reg = c.register_path(path);
  ASSERT_EQ(reg.status.status, serve::ServeStatus::kOk) << reg.status.detail;
  EXPECT_TRUE(reg.newly_registered);
  EXPECT_EQ(reg.kernel, "stream/tile");
  EXPECT_EQ(reg.rows, a.rows);
  EXPECT_EQ(reg.cols, a.cols);

  // Registering the same container again round-trips to the same entry.
  const auto again = c.register_path(path);
  ASSERT_EQ(again.status.status, serve::ServeStatus::kOk);
  EXPECT_EQ(again.matrix_id, reg.matrix_id);
  EXPECT_FALSE(again.newly_registered);

  const auto x = pow2_x(a.cols, 0xF6);
  const auto r = c.spmv(reg.matrix_id, x);
  ASSERT_TRUE(r.ok()) << r.status.detail;
  EXPECT_EQ(r.path, "stream/tile");
  std::vector<real_t> want(static_cast<std::size_t>(a.rows));
  fmt::Csr::from_coo(a).spmv(x, want);
  ASSERT_EQ(r.y.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(r.y[i], want[i]) << "row " << i << " differs bitwise";
  }

  // Streamed entries serve spmv only.
  const auto sv = c.solve(reg.matrix_id, x, 1);
  EXPECT_EQ(sv.status.status, serve::ServeStatus::kBadRequest);

  // Stats reflect the streaming execution shape (append-last wire fields).
  const auto st = c.stats();
  ASSERT_EQ(st.status.status, serve::ServeStatus::kOk);
  EXPECT_EQ(st.stream_registered, 1u);
  EXPECT_EQ(st.stream_applies, 1u);
  EXPECT_GE(st.shard_domains, 1u);

  server.stop();
}

TEST_F(StreamTest, ServeRegisterByPathRejectsDamagedContainers) {
  serve::ServerOptions opt;
  opt.socket_path = (dir_ / "s.sock").string();
  opt.plan_cache_dir = (dir_ / "plans").string();
  opt.tune_on_register = false;
  serve::Server server(opt);
  server.start();

  serve::Client c(opt.socket_path);
  // Nonexistent path: typed IoError through the kFaulted reply.
  const auto miss = c.register_path((dir_ / "nope.bccoo").string());
  EXPECT_EQ(miss.status.status, serve::ServeStatus::kFaulted);
  EXPECT_EQ(miss.status.code, Status::kIoError);

  // Tampered container: the open-time checksum classifies the fault and
  // the daemon keeps serving.
  const auto A = gen::stencil2d(16, 16, false, 1);
  const auto path = save(core::Bccoo::build(A, {}));
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size / 2));
    const char b = 0x7f;
    f.write(&b, 1);
  }
  const auto bad = c.register_path(path);
  EXPECT_EQ(bad.status.status, serve::ServeStatus::kFaulted);
  EXPECT_EQ(bad.status.code, Status::kDataCorruption);

  server.stop();
}

}  // namespace
}  // namespace yaspmv
