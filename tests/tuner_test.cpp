// Auto-tuner tests (Section 4): pruning, candidate validity, caching and
// matrix-structure-sensitive decisions.
#include "yaspmv/tune/tuner.hpp"

#include <gtest/gtest.h>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

TEST(Tuner, PrunedBlockDimsAreFourSmallestFootprints) {
  const auto A = gen::fem_mesh(1200, 36, 3, 0.02, 1);
  const auto dims = tune::pruned_block_dims(A);
  ASSERT_EQ(dims.size(), 4u);
  // A 3x3-blocked FEM matrix: tall/wide blocks beat 1x1 on footprint, so
  // (1,1) must not be the first choice.
  EXPECT_FALSE(dims[0].first == 1 && dims[0].second == 1);
}

TEST(Tuner, FindsValidConfigOnSmallMatrix) {
  const auto A = gen::random_scattered(600, 600, 5, 2);
  const auto r = tune::tune(A, sim::gtx680());
  EXPECT_GT(r.best.gflops, 0.0);
  EXPECT_GT(r.evaluated, 10);
  EXPECT_GT(r.tuning_seconds, 0.0);
  EXPECT_FALSE(r.top.empty());
  // The best candidate must execute and match the reference.
  core::SpmvEngine eng(A, r.best.format, r.best.exec, sim::gtx680());
  SplitMix64 rng(1);
  std::vector<real_t> x(600), y(600), want(600);
  for (auto& v : x) v = rng.next_double(-1, 1);
  fmt::Csr::from_coo(A).spmv(x, want);
  eng.run(x, y);
  for (std::size_t i = 0; i < 600; ++i) {
    ASSERT_NEAR(y[i], want[i], 1e-9 * std::max(1.0, std::abs(want[i])));
  }
}

TEST(Tuner, TopCandidatesSortedDescending) {
  const auto A = gen::stencil2d(40, 40, false, 3);
  const auto r = tune::tune(A, sim::gtx680());
  for (std::size_t i = 1; i < r.top.size(); ++i) {
    EXPECT_GE(r.top[i - 1].gflops, r.top[i].gflops);
  }
}

TEST(Tuner, BlockedMatrixPrefersBlocks) {
  // Dense 3x3 blocks -> the tuner should pick block_h > 1 or block_w > 1.
  const auto A = gen::fem_mesh(2400, 45, 3, 0.02, 4);
  const auto r = tune::tune(A, sim::gtx680());
  EXPECT_GT(r.best.format.block_w * r.best.format.block_h, 1);
}

TEST(Tuner, ScatteredMatrixPrefersSmallBlocks) {
  const auto A = gen::random_scattered(2000, 2000, 4, 5);
  const auto r = tune::tune(A, sim::gtx680());
  // Zero fill-in dominates: 1-wide blocks win on scattered patterns.
  EXPECT_LE(r.best.format.block_w * r.best.format.block_h, 2);
}

TEST(Tuner, RejectsEmptyMatrix) {
  fmt::Coo empty;
  EXPECT_THROW(tune::tune(empty, sim::gtx680()), std::invalid_argument);
}

TEST(Tuner, DeviceChangesCanChangeChoice) {
  // Not asserting a specific difference — only that both devices tune
  // successfully and report device-consistent throughput.
  const auto A = gen::quantum_chem(1500, 40, 6);
  const auto r680 = tune::tune(A, sim::gtx680());
  const auto r480 = tune::tune(A, sim::gtx480());
  EXPECT_GT(r680.best.gflops, 0.0);
  EXPECT_GT(r480.best.gflops, 0.0);
  EXPECT_GT(r680.best.gflops, r480.best.gflops * 0.8);
}

TEST(Tuner, ExhaustiveAtLeastAsGoodAsPruned) {
  const auto A = gen::random_scattered(400, 400, 6, 7);
  tune::TuneOptions pruned;
  tune::TuneOptions full;
  full.exhaustive = true;
  const auto rp = tune::tune(A, sim::gtx680(), pruned);
  const auto rf = tune::tune(A, sim::gtx680(), full);
  EXPECT_GE(rf.best.gflops, rp.best.gflops * 0.999);
  EXPECT_GT(rf.evaluated, rp.evaluated);
}

TEST(Tuner, SerialAndParallelFormatBuildsAreByteIdentical) {
  // The tuner prebuilds every candidate format on the WorkPool; the
  // parallel Bccoo builder is defined to produce the exact bytes of the
  // serial one (same sort order, same streams) for any worker count.
  const auto A = gen::powerlaw(900, 850, 6, 2.2, 0.4, 41);
  for (core::FormatConfig fc :
       {core::FormatConfig{}, [] {
          core::FormatConfig c;
          c.slices = 4;
          c.block_w = 2;
          c.block_h = 2;
          return c;
        }()}) {
    const auto serial = core::Bccoo::build(A, fc, 1);
    for (unsigned workers : {2u, 8u}) {
      EXPECT_TRUE(serial == core::Bccoo::build(A, fc, workers))
          << "workers=" << workers;
    }
  }
}

TEST(Tuner, RecordsBuildAndEvalSecondsPerCandidate) {
  const auto A = gen::random_scattered(500, 500, 6, 3);
  const auto r = tune::tune(A, sim::gtx680(), {});
  ASSERT_FALSE(r.top.empty());
  EXPECT_GT(r.formats_built, 0);
  EXPECT_GE(r.format_build_seconds, 0.0);
  for (const auto& c : r.top) {
    EXPECT_GE(c.build_seconds, 0.0);
    EXPECT_GE(c.eval_seconds, 0.0);
  }
}

TEST(Tuner, NativeMeasurementFillsMeasuredColumns) {
  const auto A = gen::random_scattered(400, 400, 6, 19);
  tune::TuneOptions opt;
  opt.measure_native = true;
  opt.native_reps = 1;
  const auto r = tune::tune(A, sim::gtx680(), opt);
  ASSERT_TRUE(r.native_measured);
  EXPECT_GT(r.best_native.measured_gflops, 0.0);
  EXPECT_GT(r.best_native.measured_bytes, 0u);
  // The modeled ranking itself must be untouched by the native pass.
  tune::TuneOptions plain;
  const auto rp = tune::tune(A, sim::gtx680(), plain);
  EXPECT_EQ(rp.best.format.to_string(), r.best.format.to_string());
  EXPECT_EQ(rp.best.exec.to_string(), r.best.exec.to_string());
}

}  // namespace
}  // namespace yaspmv
