// Unit tests for the util layer: common helpers, RNG determinism and
// distributions, CLI args, table printer, ordered parallel-for.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "yaspmv/util/args.hpp"
#include "yaspmv/util/common.hpp"
#include "yaspmv/util/json.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/table.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv {
namespace {

TEST(Common, CeilDivRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(std::size_t{5}, std::size_t{8}), 8u);
}

TEST(Common, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "the message");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "the message");
  }
}

TEST(Rng, DeterministicStream) {
  SplitMix64 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  SplitMix64 a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  // Rough uniformity: every residue hit.
  std::vector<int> hits(17, 0);
  SplitMix64 rng2(8);
  for (int i = 0; i < 17000; ++i) hits[rng2.next_below(17)]++;
  for (int h : hits) EXPECT_GT(h, 500);
}

TEST(Rng, DoublesInHalfOpenInterval) {
  SplitMix64 rng(9);
  double mn = 1, mx = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  for (int i = 0; i < 100; ++i) {
    const double d = rng.next_double(-3, 5);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, PowerlawTailProperties) {
  SplitMix64 rng(10);
  std::size_t ones = 0, big = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto k = rng.next_powerlaw(2.2, 100000);
    EXPECT_GE(k, 1u);
    if (k == 1) ++ones;
    if (k > 50) ++big;
  }
  EXPECT_GT(ones, n / 3);  // mass at the head
  EXPECT_GT(big, 10u);     // heavy tail exists
}

TEST(Args, ParsesFlagsValuesPositionals) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1",
                        "--name=x=y", "pos2"};
  Args a(6, argv);
  EXPECT_EQ(a.get_int("alpha", 0), 3);
  EXPECT_TRUE(a.has("flag"));
  EXPECT_EQ(a.get("flag"), "1");
  EXPECT_EQ(a.get("name"), "x=y");
  EXPECT_FALSE(a.has("missing"));
  EXPECT_EQ(a.get("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 0), 3.0);
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Table, AlignsColumnsAndFormats) {
  TablePrinter t({"a", "long header"});
  t.add_row({"xxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}

TEST(ThreadPool, VisitsEveryIndexOnceAnyWorkerCount) {
  for (unsigned workers : {1u, 2u, 5u}) {
    std::vector<std::atomic<int>> hits(97);
    parallel_for_ordered(97, workers, [&](unsigned w, std::size_t i) {
      EXPECT_LT(w, std::max(workers, 1u));
      hits[i].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  bool called = false;
  parallel_for_ordered(0, 4, [&](unsigned, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SequentialModeIsInOrder) {
  std::vector<std::size_t> order;
  parallel_for_ordered(10, 1, [&](unsigned, std::size_t i) {
    order.push_back(i);
  });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Json, WriterEmitsValidNestedDocument) {
  json::Writer w;
  w.begin_object();
  w.key("name").value("bench \"quoted\"\n");
  w.key("count").value(42);
  w.key("pi").value(3.25);
  w.key("nan_becomes_null").value(std::nan(""));
  w.key("flag").value(true);
  w.key("rows").begin_array();
  w.begin_object();
  w.key("x").value(1);
  w.end_object();
  w.value(7);
  w.end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  const std::string doc = w.take();
  EXPECT_TRUE(json::valid(doc)) << doc;
  EXPECT_NE(doc.find("\"nan_becomes_null\": null"), std::string::npos);
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json::valid("{}"));
  EXPECT_TRUE(json::valid(" [1, 2.5e-3, \"a\", null, true, [], {\"k\": []}] "));
  EXPECT_TRUE(json::valid("-0.5"));
  EXPECT_FALSE(json::valid(""));
  EXPECT_FALSE(json::valid("{"));
  EXPECT_FALSE(json::valid("{\"a\": }"));
  EXPECT_FALSE(json::valid("[1,]"));
  EXPECT_FALSE(json::valid("01"));
  EXPECT_FALSE(json::valid("nul"));
  EXPECT_FALSE(json::valid("{} extra"));
  EXPECT_FALSE(json::valid("\"unterminated"));
  EXPECT_FALSE(json::valid("\"bad \\q escape\""));
}

}  // namespace
}  // namespace yaspmv
