// VecOps kernel tests: every pooled vector primitive must match a naive
// double-precision reference, the fused solver updates must agree with
// their unfused composition (bitwise on the updated vectors, 1-ulp-scaled
// on the reductions), and — the determinism contract of cpu/vecops.hpp —
// results must be bitwise identical for ANY requested thread count at a
// fixed dispatch level, and across dispatch levels to a 1-ulp-scaled
// tolerance.  Runs under TSan (label `tsan`) to certify the pooled chunk
// scheme is race-free.
#include "yaspmv/cpu/vecops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

using cpu::DotPair;
using cpu::VecOps;
using cpu::simd::Level;

/// RAII guard: force a dispatch level for one test, restore after.
struct LevelGuard {
  Level saved;
  explicit LevelGuard(Level l) : saved(cpu::simd::active()) {
    cpu::simd::set_level(l);
  }
  ~LevelGuard() { cpu::simd::set_level(saved); }
};

bool close_ulps(double a, double b, double scale_hint) {
  const double scale =
      std::max({std::abs(a), std::abs(b), std::abs(scale_hint), 1.0});
  return std::abs(a - b) <=
         8 * std::numeric_limits<double>::epsilon() * scale;
}

/// Bitwise vector equality that stays UBSan-clean on empty vectors
/// (memcmp's pointer arguments may not be null even with length 0).
bool same_bits(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

std::vector<real_t> rand_vec(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<real_t> v(n);
  for (auto& e : v) e = rng.next_double(-1, 1);
  return v;
}

/// Sizes spanning the interesting chunk-grid shapes: empty, sub-lane,
/// exact lanes, one partial chunk, exactly one chunk, a chunk boundary
/// straddle, and a multi-chunk grid with a ragged tail.
const std::size_t kSizes[] = {0,
                              1,
                              3,
                              4,
                              7,
                              VecOps::kChunk - 1,
                              VecOps::kChunk,
                              VecOps::kChunk + 5,
                              3 * VecOps::kChunk + 17};

TEST(VecOps, DotMatchesReference) {
  VecOps vo(2);
  for (const std::size_t n : kSizes) {
    const auto a = rand_vec(n, 0xA0 + n);
    const auto b = rand_vec(n, 0xB0 + n);
    double want = 0;
    for (std::size_t i = 0; i < n; ++i) want += a[i] * b[i];
    const double got = vo.dot(a, b);
    EXPECT_TRUE(close_ulps(got, want, static_cast<double>(n)))
        << "n=" << n << " got=" << got << " want=" << want;
    EXPECT_TRUE(close_ulps(vo.nrm2(a), std::sqrt(std::max(0.0, vo.dot(a, a))),
                           1.0))
        << "n=" << n;
  }
}

TEST(VecOps, Dot2MatchesTwoDots) {
  VecOps vo(3);
  for (const std::size_t n : kSizes) {
    const auto a = rand_vec(n, 0x10 + n);
    const auto b = rand_vec(n, 0x20 + n);
    const auto c = rand_vec(n, 0x30 + n);
    const DotPair d = vo.dot2(a, b, c);
    // Same lane order and combine as the single-dot kernel: exact match.
    EXPECT_EQ(d.ab, vo.dot(a, b)) << "n=" << n;
    EXPECT_EQ(d.ac, vo.dot(a, c)) << "n=" << n;
  }
}

TEST(VecOps, UpdatesMatchReference) {
  VecOps vo(2);
  for (const std::size_t n : kSizes) {
    const auto x = rand_vec(n, 0x40 + n);
    const double alpha = 0.37;
    auto y = rand_vec(n, 0x50 + n);
    auto want = y;
    // The reference is compiled without forced FMA contraction while the
    // AVX2 kernel fuses, so agreement is to rounding, not bitwise (the
    // bitwise guarantees live in the fused-vs-unfused and thread-count
    // tests, where both sides run the same kernels).
    for (std::size_t i = 0; i < n; ++i) want[i] += alpha * x[i];
    vo.axpy(alpha, x, y);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(close_ulps(y[i], want[i], 1.0)) << "axpy n=" << n;
    }

    auto y2 = rand_vec(n, 0x60 + n);
    auto want2 = y2;
    for (std::size_t i = 0; i < n; ++i) want2[i] = x[i] + alpha * want2[i];
    vo.xpay(x, alpha, y2);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(close_ulps(y2[i], want2[i], 1.0)) << "xpay n=" << n;
    }

    const auto r = rand_vec(n, 0x70 + n);
    const auto v = rand_vec(n, 0x80 + n);
    std::vector<real_t> s(n);
    vo.sub_scaled(r, alpha, v, s);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(close_ulps(s[i], r[i] - alpha * v[i], 1.0))
          << "sub_scaled n=" << n;
    }

    std::vector<real_t> w(n);
    vo.scale_store(2.5, r, w);
    auto w2 = r;
    vo.scale(2.5, w2);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(w[i], 2.5 * r[i]) << "scale_store n=" << n;
      ASSERT_EQ(w2[i], 2.5 * r[i]) << "scale n=" << n;
    }
  }
}

TEST(VecOps, PrecondAndJacobiMatchReference) {
  VecOps vo(2);
  for (const std::size_t n : kSizes) {
    const auto r = rand_vec(n, 0x90 + n);
    auto d = rand_vec(n, 0xA1 + n);
    for (auto& e : d) e = 2.0 + std::abs(e);  // safely away from zero
    std::vector<real_t> z(n);
    const double rho = vo.precond_dot(r, d, z);
    double want_rho = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(z[i], r[i] / d[i]) << "precond n=" << n;
      want_rho += r[i] * (r[i] / d[i]);
    }
    EXPECT_TRUE(close_ulps(rho, want_rho, static_cast<double>(n)))
        << "n=" << n;

    const auto b = rand_vec(n, 0xB1 + n);
    const auto Ax = rand_vec(n, 0xC1 + n);
    auto xs = rand_vec(n, 0xD1 + n);
    auto want_x = xs;
    double want_rr = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double res = b[i] - Ax[i];
      want_x[i] += 0.5 * res / d[i];
      want_rr += res * res;
    }
    const double rr = vo.jacobi_update(b, Ax, d, 0.5, xs);
    EXPECT_TRUE(close_ulps(rr, want_rr, static_cast<double>(n))) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(close_ulps(xs[i], want_x[i], 1.0)) << "jacobi n=" << n;
    }
  }
}

// The fused kernels must apply the exact per-element expressions of their
// unfused composition: updated vectors bitwise equal, reductions within a
// 1-ulp-scaled tolerance of the standalone dot.
TEST(VecOps, FusedMatchesUnfusedComposition) {
  VecOps vo(2);
  for (const std::size_t n : kSizes) {
    const double alpha = 0.618, omega = -0.41, beta = 1.7;
    const auto p = rand_vec(n, 1 + n);
    const auto q = rand_vec(n, 2 + n);
    auto x_f = rand_vec(n, 3 + n);
    auto r_f = rand_vec(n, 4 + n);
    auto x_u = x_f;
    auto r_u = r_f;

    // CG update: fused vs axpy(alpha, p, x); axpy(-alpha, q, r); dot(r, r).
    const double rr_f = vo.cg_fused_update(alpha, p, q, x_f, r_f);
    vo.axpy(alpha, p, x_u);
    vo.axpy(-alpha, q, r_u);
    EXPECT_TRUE(same_bits(x_f, x_u)) << "cg x n=" << n;
    EXPECT_TRUE(same_bits(r_f, r_u)) << "cg r n=" << n;
    EXPECT_TRUE(close_ulps(rr_f, vo.dot(r_u, r_u), static_cast<double>(n)))
        << "cg rr n=" << n;

    // axpy_dot vs axpy + dot.
    auto y_f = rand_vec(n, 5 + n);
    auto y_u = y_f;
    const double yy_f = vo.axpy_dot(alpha, p, y_f);
    vo.axpy(alpha, p, y_u);
    EXPECT_TRUE(same_bits(y_f, y_u)) << "axpy_dot y n=" << n;
    EXPECT_TRUE(close_ulps(yy_f, vo.dot(y_u, y_u), static_cast<double>(n)))
        << "axpy_dot n=" << n;

    // BiCGStab tail: fused vs two axpys, a sub_scaled, and two dots.
    const auto s = rand_vec(n, 6 + n);
    const auto t = rand_vec(n, 7 + n);
    const auto r0 = rand_vec(n, 8 + n);
    auto xb_f = rand_vec(n, 9 + n);
    auto rb_f = rand_vec(n, 10 + n);
    auto xb_u = xb_f;
    std::vector<real_t> rb_u(n);
    const DotPair d_f =
        vo.bicg_fused_update(alpha, p, omega, s, t, r0, xb_f, rb_f);
    for (std::size_t i = 0; i < n; ++i) {
      xb_u[i] += alpha * p[i] + omega * s[i];
    }
    vo.sub_scaled(s, omega, t, rb_u);
    EXPECT_TRUE(same_bits(rb_f, rb_u)) << "bicg r n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(close_ulps(xb_f[i], xb_u[i], 1.0)) << "bicg x n=" << n;
    }
    EXPECT_TRUE(
        close_ulps(d_f.ab, vo.dot(rb_u, rb_u), static_cast<double>(n)))
        << "bicg rr n=" << n;
    EXPECT_TRUE(close_ulps(d_f.ac, vo.dot(r0, rb_u), static_cast<double>(n)))
        << "bicg r0r n=" << n;

    // Search-direction update vs its scalar expression.
    const auto v = rand_vec(n, 11 + n);
    auto pp = rand_vec(n, 12 + n);
    auto pp_want = pp;
    for (std::size_t i = 0; i < n; ++i) {
      pp_want[i] = q[i] + beta * (pp[i] - omega * v[i]);
    }
    vo.bicg_p_update(q, beta, omega, v, pp);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(close_ulps(pp[i], pp_want[i], 1.0)) << "bicg p n=" << n;
    }
  }
}

// The core of the determinism contract: the chunk grid depends only on the
// vector length, so any thread count produces bitwise-identical results at
// a fixed dispatch level — including reductions.
TEST(VecOps, BitwiseInvariantAcrossThreadCounts) {
  const std::size_t n = 3 * VecOps::kChunk + 17;
  const auto a = rand_vec(n, 0xAA);
  const auto b = rand_vec(n, 0xBB);
  const auto p = rand_vec(n, 0xCC);
  const auto q = rand_vec(n, 0xDD);
  for (Level l : {Level::kPortable, Level::kAvx2}) {
    if (l == Level::kAvx2 && !cpu::simd::cpu_has_avx2()) continue;
    LevelGuard g(l);
    VecOps ref(1);
    const double dot1 = ref.dot(a, b);
    auto x1 = a;
    auto r1 = b;
    const double rr1 = ref.cg_fused_update(0.37, p, q, x1, r1);
    for (const unsigned threads : {2u, 3u, 8u}) {
      VecOps vo(threads);
      EXPECT_EQ(dot1, vo.dot(a, b)) << "threads=" << threads;
      auto x = a;
      auto r = b;
      EXPECT_EQ(rr1, vo.cg_fused_update(0.37, p, q, x, r))
          << "threads=" << threads;
      EXPECT_TRUE(same_bits(x, x1)) << "threads=" << threads;
      EXPECT_TRUE(same_bits(r, r1)) << "threads=" << threads;
    }
    // And repeated calls on one instance are bitwise repeatable.
    VecOps again(4);
    EXPECT_EQ(again.dot(a, b), again.dot(a, b));
  }
}

// Across dispatch levels only FMA rounding may differ.
TEST(VecOps, PortableVsAvx2WithinUlps) {
  if (!cpu::simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const std::size_t n = 2 * VecOps::kChunk + 41;
  const auto a = rand_vec(n, 0x11);
  const auto b = rand_vec(n, 0x22);
  const auto p = rand_vec(n, 0x33);
  const auto q = rand_vec(n, 0x44);
  double dot_p, rr_p;
  std::vector<real_t> x_p, r_p;
  {
    LevelGuard g(Level::kPortable);
    VecOps vo(2);
    dot_p = vo.dot(a, b);
    x_p = a;
    r_p = b;
    rr_p = vo.cg_fused_update(0.37, p, q, x_p, r_p);
  }
  LevelGuard g(Level::kAvx2);
  VecOps vo(2);
  EXPECT_TRUE(close_ulps(vo.dot(a, b), dot_p, static_cast<double>(n)));
  auto x = a;
  auto r = b;
  EXPECT_TRUE(
      close_ulps(vo.cg_fused_update(0.37, p, q, x, r), rr_p,
                 static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(close_ulps(x[i], x_p[i], 1.0)) << i;
    ASSERT_TRUE(close_ulps(r[i], r_p[i], 1.0)) << i;
  }
}

TEST(VecOps, SizeMismatchThrows) {
  VecOps vo(1);
  const std::vector<real_t> a(8), b(9);
  std::vector<real_t> y(9);
  EXPECT_THROW(vo.dot(a, b), std::exception);
  EXPECT_THROW(vo.axpy(1.0, a, y), std::exception);
  EXPECT_THROW(vo.sub_scaled(a, 1.0, a, y), std::exception);
}

}  // namespace
}  // namespace yaspmv
