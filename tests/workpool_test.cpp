// WorkPool tests: ordered ticket dispatch on persistent workers, reuse
// across launches, on-demand growth, nested and concurrent submission
// degradation, exception poisoning, and the parallel tuner sweep equaling
// the serial one.  Labeled `tsan` so the sanitizer script's TSan pass
// exercises the pool's real interleavings.
#include "yaspmv/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "yaspmv/gen/suite.hpp"
#include "yaspmv/sim/device.hpp"
#include "yaspmv/tune/tuner.hpp"

namespace yaspmv {
namespace {

TEST(WorkPool, CoversEveryIndexExactlyOnce) {
  WorkPool pool(4);
  for (unsigned workers : {1u, 2u, 4u, 7u}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                          std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      std::atomic<unsigned> max_worker{0};
      pool.run_ordered(n, workers, [&](unsigned w, std::size_t i) {
        hits[i].fetch_add(1);
        unsigned cur = max_worker.load();
        while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " n=" << n
                                     << " index " << i;
      }
      EXPECT_LT(max_worker.load(), workers);
    }
  }
}

TEST(WorkPool, PerWorkerIndicesIncrease) {
  // Tickets are claimed from a monotone counter, so the indices any single
  // worker observes must be strictly increasing — the invariant the
  // adjacent-sync chain depends on.
  WorkPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::vector<std::size_t>> seen(8);
  pool.run_ordered(kN, 4, [&](unsigned w, std::size_t i) {
    seen[w].push_back(i);
  });
  std::size_t total = 0;
  for (const auto& s : seen) {
    for (std::size_t j = 1; j < s.size(); ++j) {
      ASSERT_LT(s[j - 1], s[j]);
    }
    total += s.size();
  }
  EXPECT_EQ(total, kN);
}

TEST(WorkPool, ReuseAcrossManyLaunches) {
  WorkPool pool(3);
  std::vector<long> acc(64, 0);
  for (int round = 0; round < 200; ++round) {
    pool.run_ordered(acc.size(), 3, [&](unsigned, std::size_t i) {
      acc[i] += static_cast<long>(i) + round;
    });
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    long want = 0;
    for (int round = 0; round < 200; ++round) {
      want += static_cast<long>(i) + round;
    }
    ASSERT_EQ(acc[i], want);
  }
}

TEST(WorkPool, GrowsOnDemand) {
  WorkPool pool(2);
  EXPECT_GE(pool.workers(), 2u);
  std::atomic<int> count{0};
  pool.run_ordered(100, 6, [&](unsigned, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(pool.workers(), 6u);
}

TEST(WorkPool, NestedSubmissionRunsInline) {
  WorkPool pool(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_worker_flag{false};
  pool.run_ordered(8, 4, [&](unsigned, std::size_t) {
    if (WorkPool::on_worker_thread()) saw_worker_flag.store(true);
    // A body launching its own parallel loop (tuner candidate running the
    // simulator) must degrade to inline execution, not deadlock.
    parallel_for_ordered(10, 4, [&](unsigned w, std::size_t) {
      EXPECT_EQ(w, 0u);  // inline loop is always "worker 0"
      inner_total.fetch_add(1);
    });
  });
  EXPECT_TRUE(saw_worker_flag.load());
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(WorkPool, ConcurrentSubmittersAllComplete) {
  WorkPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr std::size_t kN = 300;
  std::vector<std::vector<int>> results(kSubmitters,
                                        std::vector<int>(kN, 0));
  std::vector<std::thread> ts;
  ts.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    ts.emplace_back([&, s] {
      for (int round = 0; round < 5; ++round) {
        pool.run_ordered(kN, 3, [&, s](unsigned, std::size_t i) {
          results[static_cast<std::size_t>(s)][i]++;
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  for (const auto& r : results) {
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(r[i], 5);
  }
}

TEST(WorkPool, ExceptionPoisonsLaunchAndPropagates) {
  WorkPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_ordered(100, 4,
                       [&](unsigned, std::size_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                         ran.fetch_add(1);
                       }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 100);
  // The pool stays usable after a poisoned launch.
  std::atomic<int> after{0};
  pool.run_ordered(50, 4, [&](unsigned, std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
}

TEST(WorkPool, SharedPoolThroughFreeFunction) {
  std::vector<int> hits(128, 0);
  parallel_for_ordered(hits.size(), 4, [&](unsigned, std::size_t i) {
    hits[i]++;
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(WorkPool, ParallelTunerMatchesSerialSweep) {
  const auto A = gen::stencil2d(10, 10, false, 2);
  const auto dev = sim::gtx680();
  tune::TuneOptions serial_opt;
  serial_opt.tune_workers = 1;
  tune::TuneOptions pooled_opt;
  pooled_opt.tune_workers = 4;
  const auto serial = tune::tune(A, dev, serial_opt);
  const auto pooled = tune::tune(A, dev, pooled_opt);
  EXPECT_EQ(serial.evaluated, pooled.evaluated);
  EXPECT_EQ(serial.skipped, pooled.skipped);
  EXPECT_EQ(serial.best.format.to_string(), pooled.best.format.to_string());
  EXPECT_EQ(serial.best.exec.to_string(), pooled.best.exec.to_string());
  EXPECT_EQ(serial.best.gflops, pooled.best.gflops);
  ASSERT_EQ(serial.top.size(), pooled.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(serial.top[i].gflops, pooled.top[i].gflops) << "top " << i;
  }
  EXPECT_EQ(serial.skipped_configs, pooled.skipped_configs);
}

}  // namespace
}  // namespace yaspmv
