#!/usr/bin/env sh
# Guards the compile-time kernel-specialization grid (cpu/kernels_grid.hpp)
# against silent growth.  The grid trades binary size for dispatch speed;
# that trade is only sound while it stays bounded, so this script fails
# when either
#
#   * the number of instantiated grid entries exceeds its budget (every
#     YASPMV_GRID_ENTRY / YASPMV_SPMM_GRID_ENTRY use is one run_chunk /
#     run_spmm_chunk template instantiation), or
#   * the stripped yaspmv_cli binary outgrows its byte budget (the grid is
#     header-only, so every consumer pays the instantiation cost; the CLI
#     links the whole library and is the canonical canary).
#
# Budgets carry ~30% headroom over today's numbers (36 chunk entries,
# 3 spmm entries, ~630 KB stripped CLI) so legitimate small additions pass
# while a combinatorial explosion — say a new axis multiplying the grid —
# trips the guard and forces a deliberate budget bump in review.
#
# Usage: tools/check_kernel_grid.sh [path/to/yaspmv_cli]
#        (the size check is skipped when no binary path is given)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
hdr="$repo/src/yaspmv/cpu/kernels_grid.hpp"

max_chunk_entries=48
max_spmm_entries=6
max_cli_bytes=850000

fail=0

# grep -c counts the #define line too; subtract it.  (The SPMM macro name
# does not contain the chunk macro name, so the counts stay disjoint.)
chunk=$(($(grep -c 'YASPMV_GRID_ENTRY(' "$hdr") - 1))
spmm=$(($(grep -c 'YASPMV_SPMM_GRID_ENTRY(' "$hdr") - 1))

echo "check_kernel_grid: $chunk chunk entries (budget $max_chunk_entries)," \
     "$spmm spmm entries (budget $max_spmm_entries)"
if [ "$chunk" -lt 1 ] || [ "$chunk" -gt "$max_chunk_entries" ]; then
  echo "FAIL: chunk-kernel grid has $chunk entries," \
       "budget is $max_chunk_entries" >&2
  fail=1
fi
if [ "$spmm" -lt 1 ] || [ "$spmm" -gt "$max_spmm_entries" ]; then
  echo "FAIL: spmm-kernel grid has $spmm entries," \
       "budget is $max_spmm_entries" >&2
  fail=1
fi

if [ "$#" -ge 1 ]; then
  cli="$1"
  if [ ! -f "$cli" ]; then
    echo "FAIL: binary '$cli' not found" >&2
    exit 1
  fi
  tmp=$(mktemp)
  trap 'rm -f "$tmp"' EXIT
  cp "$cli" "$tmp"
  strip "$tmp" 2>/dev/null || true
  size=$(wc -c < "$tmp")
  echo "check_kernel_grid: stripped $(basename "$cli") is $size bytes" \
       "(budget $max_cli_bytes)"
  if [ "$size" -gt "$max_cli_bytes" ]; then
    echo "FAIL: stripped binary is $size bytes, budget is $max_cli_bytes —" \
         "did the grid (or another template family) explode?" >&2
    fail=1
  fi
fi

[ "$fail" -eq 0 ] && echo "check_kernel_grid: OK"
exit "$fail"
