#!/usr/bin/env sh
# Guards the out-of-core streaming apply's zero-allocation contract
# (cpu/stream_spmv.hpp): every apply must reuse the ctor-built tile
# scratch — a per-apply or per-tile allocation would malloc-storm exactly
# on the matrices too large to hold in memory, which is the path's whole
# reason to exist.
#
# The CLI converts a generated suite matrix into a .bccoo container, then
# stream_alloc_guard (which overrides global operator new/delete to count)
# maps it, warms one apply, arms the counter and asserts N further applies
# allocate nothing.
#
# Usage: tools/check_stream_alloc.sh path/to/yaspmv_cli path/to/stream_alloc_guard
set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: check_stream_alloc.sh <yaspmv_cli> <stream_alloc_guard>" >&2
  exit 2
fi
cli="$1"
guard="$2"

tmp="${TMPDIR:-/tmp}/check_stream_alloc.$$.bccoo"
trap 'rm -f "$tmp"' EXIT

"$cli" convert --matrix=QCD --scale=0.1 --out="$tmp" > /dev/null
"$guard" "$tmp" 8
