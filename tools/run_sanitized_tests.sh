#!/usr/bin/env sh
# Builds the test suite under sanitizers and runs it, in two passes:
#
#   address  ASan + UBSan over the full suite               (build-asan)
#   thread   TSan over the tsan/replay/serve/integrity/shard-labeled suites
#            (build-tsan) — chaos_test + workpool_test + segsum_modes_test +
#            compressed_test + vecops_test + solver_determinism_test +
#            kernel_grid_test + replay_test, the ones
#            that exercise the persistent WorkPool (reuse across launches,
#            concurrent submitters, unordered chunk claims and the
#            speculative carry fix-up, the parallel tuner sweep and BCCOO
#            build, multi-threaded compressed-stream decode, the pooled
#            vector kernels and fused solver loops), the adjacent-sync spin
#            chain and the flight recorder's lock-free journal; plus
#            serve_test + serve_chaos_test, which drive the serving
#            daemon's accept / dispatch / executor / drain threads under
#            concurrent clients; plus integrity_test, whose checksum-
#            verified applies and fault-injected rollbacks run on the
#            multi-threaded CpuSpmv chunk pass; plus shard_test +
#            stream_test, which drive the NUMA shard-affinity schedule
#            (run_sharded spill, first-touch fills) and the out-of-core
#            streaming engine through the serving daemon.
#
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
#        YASPMV_SANITIZE=address|thread limits the run to one pass.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
mode="${YASPMV_SANITIZE:-both}"

run_asan() {
  build="${YASPMV_ASAN_BUILD_DIR:-$repo/build-asan}"
  cmake -B "$build" -S "$repo" \
    -DYASPMV_SANITIZE=address \
    -DYASPMV_BUILD_BENCH=OFF \
    -DYASPMV_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$build" --output-on-failure "$@"
}

run_tsan() {
  build="${YASPMV_TSAN_BUILD_DIR:-$repo/build-tsan}"
  cmake -B "$build" -S "$repo" \
    -DYASPMV_SANITIZE=thread \
    -DYASPMV_BUILD_BENCH=OFF \
    -DYASPMV_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
    --target chaos_test workpool_test segsum_modes_test compressed_test \
             vecops_test solver_determinism_test kernel_grid_test \
             replay_test serve_test serve_chaos_test integrity_test \
             shard_test stream_test
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$build" -L "tsan|replay|serve|integrity|shard" \
      --output-on-failure "$@"
}

case "$mode" in
  address) run_asan "$@" ;;
  thread)  run_tsan "$@" ;;
  *)       run_asan "$@"; run_tsan "$@" ;;
esac
