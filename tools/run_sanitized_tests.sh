#!/usr/bin/env sh
# Builds the test suite with AddressSanitizer + UBSan and runs it.
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${YASPMV_ASAN_BUILD_DIR:-$repo/build-asan}"

cmake -B "$build" -S "$repo" \
  -DYASPMV_SANITIZE=ON \
  -DYASPMV_BUILD_BENCH=OFF \
  -DYASPMV_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"

cd "$build"
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ctest --output-on-failure "$@"
