// serve-client — command-line client for the yaspmv serving daemon.
//
//   serve-client register --socket=S (--mtx=f.mtx | --matrix=Name [--scale=f])
//                         [--force-retune]
//   serve-client spmv     --socket=S --id=HEX (--mtx=... | --matrix=...)
//                         [--deadline-ms=N] [--retries=N] [--inject=KIND]
//                         [--out=y.txt]
//   serve-client solve    --socket=S --id=HEX (--mtx=... | --matrix=...)
//                         [--solver=cg|bicgstab] [--tol=1e-10]
//                         [--max-iters=N] [--out=x.txt]
//   serve-client stats    --socket=S
//   serve-client shutdown --socket=S
//
// register prints the matrix id (hex) that spmv/solve take via --id; the
// input vector for spmv (and the right-hand side for solve) is seeded
// deterministically from the matrix shape, so two runs compare bitwise.
#include <fstream>
#include <iostream>

#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/matrix_market.hpp"
#include "yaspmv/io/plan_io.hpp"
#include "yaspmv/serve/client.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/rng.hpp"

namespace {

using namespace yaspmv;

int usage() {
  std::cerr
      << "usage: serve-client <register|register-path|spmv|solve|stats|"
         "shutdown> --socket=<path> [options]\n"
         "  register  --mtx=<f.mtx> | --matrix=<name> [--scale=f] "
         "[--force-retune]\n"
         "  register-path --file=<f.bccoo>   (served out-of-core from the "
         "mmapped file)\n"
         "  spmv      [--id=<hex>] --n=<cols> | --mtx=|--matrix= "
         "(id derived from the input when omitted)\n"
         "            [--deadline-ms=N] [--retries=N]\n"
         "            [--inject=nan|drop_publish|corrupt_cache|fail_main|"
         "sleep:<ms>|corrupt_publish]\n"
         "            [--verified] [--out=<y.txt>]\n"
         "  solve     [--id=<hex>] --n=<rows> | --mtx=|--matrix= "
         "[--solver=cg|bicgstab]\n"
         "            [--tol=1e-10] [--max-iters=N] [--verified] [--out=<x.txt>]\n"
         "  stats\n"
         "  shutdown\n";
  return 2;
}

fmt::Coo load_input(const Args& args) {
  if (args.has("mtx")) return io::read_matrix_market_file(args.get("mtx"));
  const auto& e = gen::suite_entry(args.get("matrix", "Protein"));
  return e.make(e.bench_scale * args.get_double("scale", 0.5));
}

std::vector<real_t> seeded_vector(std::size_t n, std::uint64_t seed) {
  std::vector<real_t> v(n);
  SplitMix64 rng(seed);
  for (auto& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

serve::RequestOptions request_options(const Args& args) {
  serve::RequestOptions opt;
  opt.deadline_ms =
      static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
  opt.retries = static_cast<int>(args.get_int("retries", 0));
  opt.verified = args.has("verified");
  const std::string inj = args.get("inject");
  if (!inj.empty()) {
    if (inj == "nan") {
      opt.inject = serve::Inject::kNan;
    } else if (inj == "drop_publish") {
      opt.inject = serve::Inject::kDropPublish;
    } else if (inj == "corrupt_cache") {
      opt.inject = serve::Inject::kCorruptCache;
    } else if (inj == "fail_main") {
      opt.inject = serve::Inject::kFailMain;
    } else if (inj == "corrupt_publish") {
      opt.inject = serve::Inject::kCorruptPublish;
    } else if (inj.rfind("sleep:", 0) == 0) {
      opt.inject = serve::Inject::kSleepMs;
      opt.inject_arg =
          static_cast<std::uint32_t>(std::strtoul(inj.c_str() + 6, nullptr, 10));
    } else {
      throw std::invalid_argument("unknown --inject kind '" + inj + "'");
    }
  }
  return opt;
}

void write_vector(const std::string& path, const std::vector<real_t>& v) {
  std::ofstream out(path);
  out.precision(17);
  for (const real_t x : v) out << x << "\n";
}

int report_error(const serve::ReplyStatus& s) {
  std::cerr << "error: " << serve::to_string(s.status);
  if (s.status == serve::ServeStatus::kFaulted) {
    std::cerr << " (" << to_string(s.code) << ")";
  }
  if (!s.detail.empty()) std::cerr << ": " << s.detail;
  std::cerr << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  const std::string socket = args.get("socket");
  if (socket.empty()) return usage();
  try {
    serve::Client client(socket);
    if (cmd == "register") {
      const auto a = load_input(args);
      const auto r = client.register_matrix(a, args.has("force-retune"));
      if (r.status.status != serve::ServeStatus::kOk) {
        return report_error(r.status);
      }
      std::cout << std::hex << r.matrix_id << std::dec << "\n";
      std::cerr << (r.warm ? "warm" : "cold") << " registration in "
                << r.register_seconds << " s ("
                << (r.warm ? "saved tuning of " : "tuned in ")
                << r.tuning_seconds << " s, " << r.evaluated
                << " candidates, kernel " << r.kernel << ")\n";
      return 0;
    }
    if (cmd == "register-path") {
      const std::string file = args.get("file");
      if (file.empty()) return usage();
      const auto r = client.register_path(file);
      if (r.status.status != serve::ServeStatus::kOk) {
        return report_error(r.status);
      }
      std::cout << std::hex << r.matrix_id << std::dec << "\n";
      std::cerr << (r.newly_registered ? "mapped" : "already mapped") << " "
                << r.rows << " x " << r.cols << " in " << r.register_seconds
                << " s (kernel " << r.kernel << ", served out-of-core)\n";
      return 0;
    }
    if (cmd == "stats") {
      const auto s = client.stats();
      if (s.status.status != serve::ServeStatus::kOk) {
        return report_error(s.status);
      }
      std::cout << "accepted " << s.accepted << "\ncompleted " << s.completed
                << "\noverloaded " << s.overloaded << "\ndeadline_expired "
                << s.deadline_expired << "\nfaulted " << s.faulted
                << "\nrecovered " << s.recovered << "\nprotocol_errors "
                << s.protocol_errors << "\ndisconnects " << s.disconnects
                << "\nshed_on_drain " << s.shed_on_drain << "\nregistered "
                << s.registered << "\nplan_cache_hits " << s.plan_cache_hits
                << "\nplan_cache_misses " << s.plan_cache_misses
                << "\ninflight " << s.inflight << "\nverified_requests "
                << s.verified_requests << "\nintegrity_faults "
                << s.integrity_faults << "\nintegrity_recovered "
                << s.integrity_recovered << "\nexecutors " << s.executors
                << "\napply_threads " << s.apply_threads << "\ngrid_plans "
                << s.grid_plans << "\ngeneric_plans " << s.generic_plans
                << "\nstream_registered " << s.stream_registered
                << "\nstream_applies " << s.stream_applies
                << "\nshard_domains " << s.shard_domains << "\n";
      return 0;
    }
    if (cmd == "shutdown") {
      const auto s = client.shutdown_server();
      if (s.status != serve::ServeStatus::kOk) return report_error(s);
      std::cout << "server draining\n";
      return 0;
    }
    if (cmd != "spmv" && cmd != "solve") return usage();

    // Identify the matrix and the operand shape.  --n sizes the seeded
    // vector directly; otherwise the shape comes from the same --mtx /
    // --matrix input that was registered.  When --id is omitted the id is
    // derived locally from that input (the server keys matrices by
    // payload checksum), so `spmv --mtx=m.mtx` alone round-trips.
    std::uint64_t id = 0;
    index_t rows = 0, cols = 0;
    if (args.has("id")) id = std::strtoull(args.get("id").c_str(), nullptr, 16);
    if (args.has("n")) {
      rows = cols = static_cast<index_t>(args.get_int("n", 0));
    }
    if (!args.has("id") || rows <= 0) {
      if (!args.has("mtx") && !args.has("matrix")) {
        std::cerr << "serve-client: " << cmd
                  << " needs --n=<length> alongside --id, or the registered "
                     "--mtx/--matrix input\n";
        return 2;
      }
      const auto a = load_input(args);
      rows = a.rows;
      cols = a.cols;
      if (!args.has("id")) id = io::payload_checksum(a);
    }
    const auto opt = request_options(args);
    if (cmd == "spmv") {
      const auto x = seeded_vector(static_cast<std::size_t>(cols), 42);
      const auto r = client.spmv(id, x, opt);
      if (!r.ok()) return report_error(r.status);
      std::cerr << "ok via " << r.path << " (" << r.attempts << " attempt"
                << (r.attempts == 1 ? "" : "s")
                << (r.recovered ? ", recovered" : "")
                << (r.verified ? ", verified" : "") << ")\n";
      for (const auto& f : r.faults) {
        std::cerr << "  fault: " << f.path << " -> " << to_string(f.status)
                  << (f.journal_file.empty() ? ""
                                             : " [" + f.journal_file + "]")
                  << "\n";
      }
      if (args.has("out")) write_vector(args.get("out"), r.y);
      return 0;
    }
    const auto b = seeded_vector(static_cast<std::size_t>(rows), 43);
    const int solver = args.get("solver", "cg") == "bicgstab" ? 2 : 1;
    const auto r = client.solve(id, b, solver, args.get_double("tol", 1e-10),
                                static_cast<std::uint32_t>(
                                    args.get_int("max-iters", 1000)),
                                opt);
    if (!r.ok()) return report_error(r.status);
    std::cerr << (r.converged ? "converged" : "NOT converged") << " in "
              << r.iterations << " iterations (rel residual "
              << r.rel_residual << ")"
              << (r.verified ? " [verified, " +
                                   std::to_string(r.integrity_faults) +
                                   " integrity faults, " +
                                   std::to_string(r.rollbacks) + " rollbacks]"
                             : "")
              << "\n";
    if (args.has("out")) write_vector(args.get("out"), r.x);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve-client: " << e.what() << "\n";
    return 1;
  }
}
