// stream_alloc_guard — asserts the out-of-core streaming apply performs
// ZERO heap allocations.  CpuStreamSpmv's contract is that all scratch
// (column/bit/value tiles) is built in the constructor and every apply
// reuses it: an allocation sneaking into the per-tile loop would turn the
// streaming walk into a malloc storm exactly on the matrices too big to
// hold in memory.  The guard counts global operator new/delete in THIS
// binary only (the overrides live here, not in the library), runs a warm
// apply, arms the counter, runs N more applies and fails if anything was
// allocated while armed.
//
//   stream_alloc_guard <file.bccoo> [applies]
//
// Registered as the `check_stream_alloc` ctest guard via
// tools/check_stream_alloc.sh, which builds the container first.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "yaspmv/cpu/stream_spmv.hpp"
#include "yaspmv/io/stream.hpp"
#include "yaspmv/util/rng.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_allocs{0};
std::atomic<std::size_t> g_frees{0};

}  // namespace

namespace {

void* counted_alloc(std::size_t n) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (p && g_armed.load(std::memory_order_relaxed)) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
  }
  std::free(p);
}

}  // namespace

// Global overrides: counting only — layout and semantics stay malloc's.
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

int main(int argc, char** argv) {
  using namespace yaspmv;
  if (argc < 2) {
    std::fprintf(stderr, "usage: stream_alloc_guard <file.bccoo> [applies]\n");
    return 2;
  }
  const long applies = argc >= 3 ? std::strtol(argv[2], nullptr, 10) : 8;

  try {
    auto mapped = std::make_shared<const io::MappedBccoo>(argv[1]);
    cpu::CpuStreamSpmv eng(mapped);

    std::vector<real_t> x(static_cast<std::size_t>(eng.cols()));
    std::vector<real_t> y(static_cast<std::size_t>(eng.rows()));
    SplitMix64 rng(42);
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);

    eng.spmv(x, y);  // warm: faults pages, installs the SIGBUS handler

    g_armed.store(true, std::memory_order_seq_cst);
    for (long i = 0; i < applies; ++i) eng.spmv(x, y);
    g_armed.store(false, std::memory_order_seq_cst);

    const std::size_t allocs = g_allocs.load();
    const std::size_t frees = g_frees.load();
    std::printf("stream_alloc_guard: %ld applies, %zu allocations, "
                "%zu frees while armed\n",
                applies, allocs, frees);
    if (allocs != 0 || frees != 0) {
      std::fprintf(stderr,
                   "FAIL: the streaming apply path allocated — the "
                   "ctor-built-scratch contract is broken\n");
      return 1;
    }
    std::printf("stream_alloc_guard: OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream_alloc_guard: %s\n", e.what());
    return 1;
  }
}
