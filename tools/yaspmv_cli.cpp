// yaspmv_cli — command-line front end for the library.
//
//   yaspmv_cli gen     --matrix=Protein [--scale=0.5] --out=m.mtx
//   yaspmv_cli info    --mtx=m.mtx | --matrix=Protein
//   yaspmv_cli tune    --mtx=m.mtx [--device=gtx680] [--exhaustive]
//                      [--extended]
//   yaspmv_cli convert --mtx=m.mtx --out=m.bccoo [--bw=1 --bh=1 --slices=1]
//   yaspmv_cli spmv    --format=m.bccoo [--threads=N] [--reps=10]
//                      [--out=y.txt]
#include <fstream>
#include <iostream>

#include "yaspmv/codegen/opencl.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/dia.hpp"
#include "yaspmv/formats/ell.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/binary.hpp"
#include "yaspmv/io/matrix_market.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/stopwatch.hpp"

namespace {

using namespace yaspmv;

int usage() {
  std::cerr <<
      "usage: yaspmv_cli <gen|info|tune|convert|spmv> [options]\n"
      "  gen     --matrix=<Table2 name> [--scale=f] --out=<file.mtx>\n"
      "  info    --mtx=<file.mtx> | --matrix=<name> [--scale=f]\n"
      "  tune    --mtx=<file.mtx> | --matrix=<name> [--device=gtx680|gtx480]\n"
      "          [--exhaustive] [--extended]\n"
      "  convert --mtx=<file.mtx> --out=<file.bccoo> [--bw=N --bh=N"
      " --slices=N]\n"
      "  spmv    --format=<file.bccoo> [--threads=N] [--reps=N]"
      " [--out=<y.txt>]\n"
      "  codegen --mtx=<file.mtx> | --matrix=<name>"
      " [--device=gtx680|gtx480] [--cuda] --out-dir=<dir>\n";
  return 2;
}

fmt::Coo load_input(const Args& args) {
  if (args.has("mtx")) return io::read_matrix_market_file(args.get("mtx"));
  const auto& e = gen::suite_entry(args.get("matrix", "Protein"));
  return e.make(e.bench_scale * args.get_double("scale", 0.5));
}

int cmd_gen(const Args& args) {
  const auto A = load_input(args);
  const std::string out = args.get("out");
  require(!out.empty(), "gen: --out is required");
  io::write_matrix_market_file(out, A);
  std::cout << "wrote " << A.rows << "x" << A.cols << " (" << A.nnz()
            << " nnz) to " << out << "\n";
  return 0;
}

int cmd_info(const Args& args) {
  const auto A = load_input(args);
  const auto csr = fmt::Csr::from_coo(A);
  std::cout << A.rows << " x " << A.cols << ", " << A.nnz()
            << " non-zeros\n"
            << "nnz/row: mean "
            << (A.rows ? static_cast<double>(A.nnz()) /
                             static_cast<double>(A.rows)
                       : 0)
            << ", max " << csr.max_row_len() << "\n"
            << "occupied diagonals: " << fmt::Dia::count_diagonals(csr)
            << "\nELL padding ratio: " << fmt::Ell::padding_ratio(csr)
            << "\nCOO footprint: " << A.footprint_bytes() << " bytes\n";
  const auto m = core::Bccoo::build(A, {});
  std::cout << "BCCOO(1x1) footprint: "
            << m.footprint_bytes(m.block_cols <= 65535) << " bytes\n";
  return 0;
}

int cmd_tune(const Args& args) {
  const auto A = load_input(args);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();
  tune::TuneOptions opt;
  opt.exhaustive = args.has("exhaustive");
  opt.extended_blocks = args.has("extended");
  const auto r = tune::tune(A, dev, opt);
  std::cout << "tuned in " << r.tuning_seconds << " s (" << r.evaluated
            << " configs, " << r.skipped << " skipped)\n"
            << "best: " << r.best.format.to_string() << " | "
            << r.best.exec.to_string() << "\n"
            << "modeled " << r.best.gflops << " GFLOPS on " << dev.name
            << ", footprint " << r.best.footprint << " bytes\n";
  return 0;
}

int cmd_convert(const Args& args) {
  const auto A = load_input(args);
  const std::string out = args.get("out");
  require(!out.empty(), "convert: --out is required");
  core::FormatConfig fc;
  fc.block_w = static_cast<index_t>(args.get_int("bw", 1));
  fc.block_h = static_cast<index_t>(args.get_int("bh", 1));
  fc.slices = static_cast<index_t>(args.get_int("slices", 1));
  Stopwatch sw;
  const auto m = core::Bccoo::build(A, fc);
  io::save_bccoo_file(out, m);
  std::cout << "built " << fc.to_string() << " in " << sw.elapsed_ms()
            << " ms: " << m.num_blocks << " blocks, "
            << m.footprint_bytes(m.block_cols <= 65535)
            << " bytes (COO: " << A.footprint_bytes() << ")\nwrote " << out
            << "\n";
  return 0;
}

int cmd_spmv(const Args& args) {
  const std::string in = args.get("format");
  require(!in.empty(), "spmv: --format is required");
  auto m = std::make_shared<const core::Bccoo>(io::load_bccoo_file(in));
  const auto threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  const long reps = args.get_int("reps", 10);
  cpu::CpuSpmv eng(m, threads);
  SplitMix64 rng(0x5eed);
  std::vector<real_t> x(static_cast<std::size_t>(m->cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(m->rows));
  eng.spmv(x, y);  // warm up
  Stopwatch sw;
  for (long r = 0; r < reps; ++r) eng.spmv(x, y);
  const double ms = sw.elapsed_ms() / static_cast<double>(reps);
  std::cout << m->rows << " x " << m->cols << ": " << ms << " ms/SpMV on "
            << eng.threads() << " thread(s)\n";
  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    f.precision(17);
    for (real_t v : y) f << v << "\n";
    std::cout << "wrote y to " << args.get("out") << "\n";
  }
  return 0;
}

int cmd_codegen(const Args& args) {
  const auto A = load_input(args);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();
  const std::string dir = args.get("out-dir", ".");
  const auto r = tune::tune(A, dev);
  const bool cuda = args.has("cuda");
  const auto kernels =
      cuda ? codegen::generate_cuda(r.best.format, r.best.exec, dev)
           : codegen::generate_opencl(r.best.format, r.best.exec, dev);
  std::cout << "tuned: " << r.best.format.to_string() << " | "
            << r.best.exec.to_string() << "\n"
            << "cache key: "
            << codegen::cache_key(r.best.format, r.best.exec) << "\n";
  for (const auto& k : kernels) {
    const std::string path = dir + "/" + k.name + (cuda ? ".cu" : ".cl");
    std::ofstream f(path);
    require(static_cast<bool>(f), "codegen: cannot open " + path);
    f << k.source;
    std::cout << "wrote " << path << " (" << k.source.size() << " bytes)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "spmv") return cmd_spmv(args);
    if (cmd == "codegen") return cmd_codegen(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
