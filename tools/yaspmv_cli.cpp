// yaspmv_cli — command-line front end for the library.
//
//   yaspmv_cli gen     --matrix=Protein [--scale=0.5] --out=m.mtx
//   yaspmv_cli info    --mtx=m.mtx | --matrix=Protein
//   yaspmv_cli tune    --mtx=m.mtx [--device=gtx680] [--exhaustive]
//                      [--extended]
//   yaspmv_cli convert --mtx=m.mtx --out=m.bccoo [--bw=1 --bh=1 --slices=1]
//   yaspmv_cli spmv    --format=m.bccoo [--threads=N] [--reps=10]
//                      [--out=y.txt]
//   yaspmv_cli solve   --mtx=m.mtx [--solver=cg] [--threads=N] [--tol=1e-10]
#include <fstream>
#include <iostream>
#include <span>

#include "yaspmv/codegen/opencl.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/core/resilient.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/cpu/stream_spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/dia.hpp"
#include "yaspmv/formats/ell.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/binary.hpp"
#include "yaspmv/io/journal_io.hpp"
#include "yaspmv/io/matrix_market.hpp"
#include "yaspmv/sim/replay.hpp"
#include "yaspmv/solvers/solvers.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/stopwatch.hpp"

namespace {

using namespace yaspmv;

int usage() {
  std::cerr <<
      "usage: yaspmv_cli <gen|info|tune|convert|spmv|solve> [options]\n"
      "  gen     --matrix=<Table2 name> [--scale=f] --out=<file.mtx>\n"
      "  info    --mtx=<file.mtx> | --matrix=<name> [--scale=f]\n"
      "  tune    --mtx=<file.mtx> | --matrix=<name> [--device=gtx680|gtx480]\n"
      "          [--exhaustive] [--extended] [--tune-workers=N]  (N concurrent\n"
      "          candidate evaluations; 0 = hardware concurrency, 1 = serial;\n"
      "          the result is identical for any N)\n"
      "          [--native [--native-threads=N]]  re-time the top candidates\n"
      "          on the native CPU backend and re-rank by measured GFLOPS\n"
      "          [--rank-threads=N]  rank candidates at the N-thread modeled\n"
      "          time (launch/fix-up overhead scales with N; default 1)\n"
      "          [--verbose]  per-candidate build vs. kernel time breakdown\n"
      "  convert --mtx=<file.mtx> --out=<file.bccoo> [--bw=N --bh=N"
      " --slices=N]\n"
      "  spmv    --format=<file.bccoo> [--threads=N] [--reps=N]"
      " [--out=<y.txt>]\n"
      "          [--cols=auto|raw|short|delta]  column stream for the native\n"
      "          kernel; [--no-delta-decode] = --cols=raw escape hatch\n"
      "          [--shards=N]  NUMA locality domains for the chunk/combine\n"
      "          passes (0 = probe the machine / YASPMV_NUMA; default 1;\n"
      "          bitwise identical to 1 shard at fixed threads+mode)\n"
      "          [--stream-file=<file.bccoo>]  out-of-core mode: mmap the\n"
      "          container and stream the apply tile by tile (nothing\n"
      "          matrix-sized resident; bitwise equal to the in-memory\n"
      "          reference apply)\n"
      "          [--kernel=auto|generic]  auto dispatches an exact\n"
      "          (bw, bh, stream) match to its specialized grid kernel\n"
      "          (bitwise identical to generic); generic pins the fallback\n"
      "          [--verify]  exhaustive residual + ABFT checksum check per\n"
      "          attempt (detected corruption raises kIntegrityFault and\n"
      "          recovers down the ladder)\n"
      "          [--inject=<fault>[:wg=N]]   (fault: drop_publish,\n"
      "          stall_publish, corrupt_publish, corrupt_cache, fail_main,\n"
      "          fail_carry, fail_combine; runs the resilient engine)\n"
      "          [--record=<file.journal>]  capture the interleaving (failed\n"
      "          attempts dump to <file>.<pid>.<seq>; a clean run to <file>)\n"
      "          [--replay=<file.journal> [--dump] [--minimize]]  re-execute a\n"
      "          recorded schedule deterministically; --minimize delta-debugs\n"
      "          it to <file>.min\n"
      "  solve   --mtx=<file.mtx> | --matrix=<name> [--scale=f]\n"
      "          [--solver=cg|bicgstab|power] [--threads=N] [--tol=1e-10]\n"
      "          [--max-iters=N] [--cols=auto|raw|short|delta] [--spd]\n"
      "          [--out=<x.txt>]\n"
      "          solves A x = b on the fused native pipeline (b = A x* for a\n"
      "          seeded x*, so the solution error is known exactly); --spd\n"
      "          symmetrizes + diagonally dominates the input first (cg\n"
      "          requires it on the generated suite patterns)\n"
      "  codegen --mtx=<file.mtx> | --matrix=<name>"
      " [--device=gtx680|gtx480] [--cuda] --out-dir=<dir>\n";
  return 2;
}

fmt::Coo load_input(const Args& args) {
  if (args.has("mtx")) return io::read_matrix_market_file(args.get("mtx"));
  const auto& e = gen::suite_entry(args.get("matrix", "Protein"));
  return e.make(e.bench_scale * args.get_double("scale", 0.5));
}

int cmd_gen(const Args& args) {
  const auto A = load_input(args);
  const std::string out = args.get("out");
  require(!out.empty(), "gen: --out is required");
  io::write_matrix_market_file(out, A);
  std::cout << "wrote " << A.rows << "x" << A.cols << " (" << A.nnz()
            << " nnz) to " << out << "\n";
  return 0;
}

int cmd_info(const Args& args) {
  const auto A = load_input(args);
  const auto csr = fmt::Csr::from_coo(A);
  std::cout << A.rows << " x " << A.cols << ", " << A.nnz()
            << " non-zeros\n"
            << "nnz/row: mean "
            << (A.rows ? static_cast<double>(A.nnz()) /
                             static_cast<double>(A.rows)
                       : 0)
            << ", max " << csr.max_row_len() << "\n"
            << "occupied diagonals: " << fmt::Dia::count_diagonals(csr)
            << "\nELL padding ratio: " << fmt::Ell::padding_ratio(csr)
            << "\nCOO footprint: " << A.footprint_bytes() << " bytes\n";
  const auto m = core::Bccoo::build(A, {});
  std::cout << "BCCOO(1x1) footprint: "
            << m.footprint_bytes(m.block_cols <= 65535) << " bytes\n";
  return 0;
}

int cmd_tune(const Args& args) {
  const auto A = load_input(args);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();
  tune::TuneOptions opt;
  opt.exhaustive = args.has("exhaustive");
  opt.extended_blocks = args.has("extended");
  opt.tune_workers = static_cast<unsigned>(args.get_int("tune-workers", 0));
  opt.measure_native = args.has("native");
  opt.native_threads = static_cast<unsigned>(args.get_int("native-threads", 1));
  opt.rank_threads = static_cast<unsigned>(args.get_int("rank-threads", 1));
  const auto r = tune::tune(A, dev, opt);
  std::cout << "tuned in " << r.tuning_seconds << " s (" << r.evaluated
            << " configs, " << r.skipped << " skipped; " << r.formats_built
            << " formats built in " << r.format_build_seconds << " s)\n";
  if (!r.skipped_configs.empty()) {
    std::cout << "skipped (first " << r.skipped_configs.size() << "):\n";
    for (const auto& s : r.skipped_configs) std::cout << "  " << s << "\n";
  }
  if (args.has("verbose")) {
    // Per-candidate cost attribution: with the prebuilt format cache the
    // build column shows what the parallel builder saved the sweep.
    std::cout << "top candidates (build s / eval s / modeled GFLOPS"
              << (r.native_measured ? " / measured GFLOPS / bytes" : "")
              << "):\n";
    for (const auto& c : r.top) {
      std::cout << "  " << c.format.to_string() << " | "
                << c.exec.to_string() << ": " << c.build_seconds << " / "
                << c.eval_seconds << " / " << c.gflops;
      if (r.native_measured) {
        std::cout << " / " << c.measured_gflops << " / " << c.measured_bytes;
      }
      std::cout << "\n";
    }
  }
  std::cout << "best: " << r.best.format.to_string() << " | "
            << r.best.exec.to_string() << "\n"
            << "modeled " << r.best.gflops << " GFLOPS on " << dev.name
            << ", footprint " << r.best.footprint << " bytes, kernel "
            << r.best.kernel << "\n";
  if (r.native_measured) {
    std::cout << "best (native measured): "
              << r.best_native.format.to_string() << " | "
              << r.best_native.exec.to_string() << "\nmeasured "
              << r.best_native.measured_gflops << " GFLOPS, "
              << r.best_native.measured_bytes << " bytes/SpMV (modeled "
              << r.best_native.footprint << "), kernel "
              << r.best_native.kernel << "\n";
  }
  return 0;
}

int cmd_convert(const Args& args) {
  const auto A = load_input(args);
  const std::string out = args.get("out");
  require(!out.empty(), "convert: --out is required");
  core::FormatConfig fc;
  fc.block_w = static_cast<index_t>(args.get_int("bw", 1));
  fc.block_h = static_cast<index_t>(args.get_int("bh", 1));
  fc.slices = static_cast<index_t>(args.get_int("slices", 1));
  Stopwatch sw;
  const auto m = core::Bccoo::build(A, fc);
  io::save_bccoo_file(out, m);
  std::cout << "built " << fc.to_string() << " in " << sw.elapsed_ms()
            << " ms: " << m.num_blocks << " blocks, "
            << m.footprint_bytes(m.block_cols <= 65535)
            << " bytes (COO: " << A.footprint_bytes() << ")\nwrote " << out
            << "\n";
  return 0;
}

/// Parses the shared "--cols=auto|raw|short|delta" flag (with the
/// "--no-delta-decode" escape hatch) used by `spmv` and `solve`.
core::ColStream parse_cols(const Args& args) {
  if (args.has("no-delta-decode")) {
    return core::ColStream::kRaw;  // escape hatch: plain 4-byte columns
  }
  core::ColStream cs = core::ColStream::kAuto;
  if (args.has("cols")) {
    const std::string s = args.get("cols");
    if (s == "raw") cs = core::ColStream::kRaw;
    else if (s == "short") cs = core::ColStream::kShort;
    else if (s == "delta") cs = core::ColStream::kDelta;
    else require(s == "auto", "unknown --cols value: " + s);
  }
  return cs;
}

/// Parses "--inject=<fault>[:wg=N]" into a FaultPlan.
sim::FaultPlan parse_fault(const std::string& spec) {
  std::string name = spec;
  int wg = 0;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    const std::string rest = spec.substr(colon + 1);
    require(rest.rfind("wg=", 0) == 0, "spmv: bad --inject suffix: " + rest);
    const std::string num = rest.substr(3);
    require(!num.empty() && num.find_first_not_of("0123456789") ==
                                std::string::npos,
            "spmv: --inject workgroup must be a number, got: " + num);
    wg = std::stoi(num);
  }
  sim::FaultPlan plan;
  plan.target_wg = wg;
  if (name == "drop_publish") {
    plan.type = sim::FaultType::kDropPublish;
  } else if (name == "stall_publish") {
    plan.type = sim::FaultType::kStallPublish;
  } else if (name == "corrupt_publish") {
    plan.type = sim::FaultType::kCorruptPublish;
  } else if (name == "corrupt_cache") {
    plan.type = sim::FaultType::kCorruptCache;
  } else if (name == "fail_main") {
    plan.type = sim::FaultType::kFailLaunch;
    plan.launch = sim::LaunchKind::kMain;
  } else if (name == "fail_carry") {
    plan.type = sim::FaultType::kFailLaunch;
    plan.launch = sim::LaunchKind::kCarry;
  } else if (name == "fail_combine") {
    plan.type = sim::FaultType::kFailLaunch;
    plan.launch = sim::LaunchKind::kCombine;
  } else {
    require(false, "spmv: unknown fault: " + name);
  }
  return plan;
}

/// Resilient path for `spmv --verify` / `spmv --inject=...`: run through the
/// degradation ladder and report what failed and where recovery landed.
int cmd_spmv_resilient(const Args& args, const core::Bccoo& m) {
  const auto A = m.to_coo();
  core::ExecConfig ec;
  ec.workers = static_cast<unsigned>(args.get_int("threads", 1));
  core::ResilientOptions opt;
  opt.verify = args.has("verify");
  // --verify also arms the ABFT checksum check: sum(y) against the
  // format's column checksums, which catches silent value/column/partial
  // corruption the sampled residual can miss between samples.
  opt.verify_checksum = args.has("verify");
  // Exhaustive residual check: sampling can miss a single corrupted row,
  // and at CLI scale one extra CPU SpMV is free.
  opt.sample_rows = A.rows;
  opt.journal_prefix = args.get("record");
  core::ResilientEngine eng(A, m.cfg, ec, sim::gtx680(), opt);

  sim::FaultInjector inj;
  if (args.has("inject")) {
    inj.arm(parse_fault(args.get("inject")));
    inj.spin_budget_override = 10000;  // detect stalls fast
    eng.set_fault_injector(&inj);
    std::cout << "injecting: " << sim::to_string(inj.plan().type) << " (wg "
              << inj.plan().target_wg << ")\n";
  }

  SplitMix64 rng(0x5eed);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  const auto r = eng.run(x, y);

  for (const auto& f : r.faults) {
    std::cout << "fault: [" << to_string(f.status) << "] at " << f.path
              << "\n       " << f.detail << "\n";
    if (!f.journal_file.empty()) {
      std::cout << "       journal: " << f.journal_file << "\n";
    }
  }
  if (args.has("record") && r.faults.empty()) {
    // Nothing failed: record the healthy interleaving instead.
    io::save_journal_file(args.get("record"), eng.capture_last_run());
    std::cout << "journal (clean run): " << args.get("record") << "\n";
  }
  std::cout << "path: " << r.path << " (ladder step " << r.ladder_step
            << ")\nattempts: " << r.attempts << " (" << r.retries()
            << " retries), recovered: " << (r.recovered ? "yes" : "no")
            << ", verified: " << (r.verified ? "yes" : "no") << "\n";
  if (args.has("inject")) {
    std::cout << "fault sites hit: " << inj.fired() << "\n";
  }
  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    f.precision(17);
    for (real_t v : y) f << v << "\n";
    std::cout << "wrote y to " << args.get("out") << "\n";
  }
  return 0;
}

/// One deterministic re-execution of a recorded schedule.
struct ReplayOutcome {
  bool failed = false;
  Status status = Status::kOk;
  std::string what;
  std::int32_t failing_wg = -1;  ///< first wait-timeout's workgroup, or -1
};

/// Replays `sched` against a fresh engine with the journal's fault plan
/// re-armed.  `x`/`y` follow the CLI's seeded-vector convention, so a
/// successful replay reproduces the recorded run's y bit for bit.
ReplayOutcome replay_once(const std::shared_ptr<const core::Bccoo>& m,
                          const core::ExecConfig& ec,
                          const sim::RecordedRun& base,
                          const sim::Schedule& sched,
                          std::span<const real_t> x, std::span<real_t> y) {
  sim::FaultInjector inj;
  inj.spin_budget_override = base.spin_budget_override;
  if (base.fault.type != sim::FaultType::kNone) inj.arm(base.fault);
  sim::FlightRecorder rec;
  sim::ReplayCoordinator coord(sched);
  rec.set_coordinator(&coord);

  core::SpmvEngine eng(m, ec, sim::gtx680());
  eng.set_fault_injector(base.fault.type != sim::FaultType::kNone ||
                                 base.spin_budget_override != 0
                             ? &inj
                             : nullptr);
  eng.set_recorder(&rec);

  ReplayOutcome out;
  try {
    eng.run(x, y);
  } catch (const SpmvError& e) {
    out.failed = true;
    out.status = e.code();
    out.what = e.what();
  }
  out.failing_wg = sim::first_timeout_event(rec.journal().snapshot()).wg;
  return out;
}

/// `spmv --replay=<file.journal>`: re-execute a recorded interleaving; with
/// --minimize, delta-debug it down to a smaller schedule that still fails.
int cmd_spmv_replay(const Args& args,
                    const std::shared_ptr<const core::Bccoo>& m) {
  const std::string path = args.get("replay");
  const sim::RecordedRun base = io::load_journal_file(path);
  if (args.has("dump")) std::cout << io::format_journal(base);

  core::ExecConfig ec;
  ec.workers = static_cast<unsigned>(args.get_int("threads", 1));
  SplitMix64 rng(0x5eed);
  std::vector<real_t> x(static_cast<std::size_t>(m->cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(m->rows));

  const sim::Schedule sched = sim::schedule_from_journal(base);
  require(!sched.steps.empty(),
          "replay: journal holds no main-kernel schedule events");
  const ReplayOutcome ref = replay_once(m, ec, base, sched, x, y);
  if (ref.failed) {
    std::cout << "replayed " << sched.steps.size() << " steps: ["
              << to_string(ref.status) << "] " << ref.what << "\n";
  } else {
    std::cout << "replayed " << sched.steps.size()
              << " steps: run completed cleanly\n";
  }

  if (!args.has("minimize")) return ref.failed ? 3 : 0;
  require(ref.failed, "minimize: the recorded schedule does not fail");

  // The failure reproduces when the class matches and (for sync timeouts)
  // the same workgroup times out.
  sim::MinimizeStats st;
  const auto oracle = [&](const sim::Schedule& cand) {
    const ReplayOutcome o = replay_once(m, ec, base, cand, x, y);
    return o.failed && o.status == ref.status &&
           (ref.failing_wg < 0 || o.failing_wg == ref.failing_wg);
  };
  const sim::Schedule min = sim::minimize_schedule(sched, oracle, &st);
  const std::string out_path = path + ".min";
  io::save_journal_file(
      out_path, sim::recorded_run_from_schedule(min, base.fault,
                                                base.spin_budget_override));
  std::cout << "minimized: " << sched.steps.size() << " -> "
            << min.steps.size() << " steps (" << st.candidates
            << " candidates, " << st.accepted << " accepted)\nwrote "
            << out_path << "\n";
  return 3;
}

/// `spmv --stream-file=...`: out-of-core apply off the mapped container.
int cmd_spmv_stream(const Args& args) {
  const std::string in = args.get("stream-file");
  auto mapped = std::make_shared<const io::MappedBccoo>(in);
  cpu::CpuStreamSpmv eng(mapped);
  const long reps = args.get_int("reps", 10);
  SplitMix64 rng(0x5eed);
  std::vector<real_t> x(static_cast<std::size_t>(eng.cols()));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(eng.rows()));
  eng.spmv(x, y);  // warm up (page cache state is whatever the OS has)
  Stopwatch sw;
  for (long r = 0; r < reps; ++r) eng.spmv(x, y);
  const double ms = sw.elapsed_ms() / static_cast<double>(reps);
  const double gbs =
      static_cast<double>(eng.streamed_bytes()) / (ms * 1e-3) / 1e9;
  std::cout << eng.rows() << " x " << eng.cols() << ": " << ms
            << " ms/SpMV streamed from " << in << ", "
            << eng.streamed_bytes() << " bytes/SpMV (" << gbs << " GB/s)\n";
  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    f.precision(17);
    for (real_t v : y) f << v << "\n";
    std::cout << "wrote y to " << args.get("out") << "\n";
  }
  return 0;
}

int cmd_spmv(const Args& args) {
  if (args.has("stream-file")) return cmd_spmv_stream(args);
  const std::string in = args.get("format");
  require(!in.empty(), "spmv: --format is required");
  auto m = std::make_shared<const core::Bccoo>(io::load_bccoo_file(in));
  if (args.has("replay")) {
    return cmd_spmv_replay(args, m);
  }
  if (args.has("inject") || args.has("verify") || args.has("record")) {
    return cmd_spmv_resilient(args, *m);
  }
  const auto threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  const long reps = args.get_int("reps", 10);
  const core::ColStream cs = parse_cols(args);
  const std::string kdreq = args.get("kernel", "auto");
  require(kdreq == "auto" || kdreq == "generic",
          "spmv: --kernel must be auto or generic");
  const auto kd = kdreq == "generic" ? cpu::grid::KernelDispatch::kGeneric
                                     : cpu::grid::KernelDispatch::kAuto;
  const auto shards = static_cast<unsigned>(args.get_int("shards", 1));
  cpu::CpuSpmv eng(m, threads, cs, cpu::default_segsum_mode(), kd, shards);
  SplitMix64 rng(0x5eed);
  std::vector<real_t> x(static_cast<std::size_t>(m->cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(static_cast<std::size_t>(m->rows));
  eng.spmv(x, y);  // warm up
  Stopwatch sw;
  for (long r = 0; r < reps; ++r) eng.spmv(x, y);
  const double ms = sw.elapsed_ms() / static_cast<double>(reps);
  const double gbs = static_cast<double>(m->traffic_bytes(eng.col_stream())) /
                     (ms * 1e-3) / 1e9;
  std::cout << m->rows << " x " << m->cols << ": " << ms << " ms/SpMV on "
            << eng.threads() << " thread(s)";
  if (eng.shard_count() > 1) std::cout << " / " << eng.shard_count()
                                       << " shard(s)";
  std::cout << ", cols="
            << core::to_string(eng.col_stream()) << ", kernel="
            << eng.kernel_id() << ", "
            << m->traffic_bytes(eng.col_stream()) << " bytes/SpMV (" << gbs
            << " GB/s)\n";
  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    f.precision(17);
    for (real_t v : y) f << v << "\n";
    std::cout << "wrote y to " << args.get("out") << "\n";
  }
  return 0;
}

/// `solve`: run an iterative solver on the fused native pipeline.  The
/// right-hand side is manufactured as b = A x* for a seeded x*, so the
/// reported solution error is exact rather than a residual proxy.
int cmd_solve(const Args& args) {
  // --spd symmetrizes + diagonally dominates the input, so cg can run on
  // any generated suite pattern (none of which are SPD as generated).
  const auto A =
      args.has("spd") ? gen::make_spd(load_input(args)) : load_input(args);
  require(A.rows == A.cols, "solve: matrix must be square");
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));
  const core::ColStream cs = parse_cols(args);
  const std::string which = args.get("solver", "cg");

  Stopwatch build_sw;
  solver::CpuOperator op(A, {}, threads, cs);
  const double build_ms = build_sw.elapsed_ms();
  const auto n = static_cast<std::size_t>(A.rows);

  SplitMix64 rng(0x5eed);
  std::vector<real_t> xs(n);
  for (auto& v : xs) v = rng.next_double(-1, 1);

  solver::SolveOptions opt;
  opt.tolerance = args.get_double("tol", 1e-10);
  opt.max_iterations = args.get_int("max-iters", 10000);
  opt.threads = threads;

  std::vector<real_t> x(n, 0.0);
  std::cout << A.rows << " x " << A.cols << " (" << A.nnz() << " nnz), "
            << which << " on " << op.threads() << " thread(s), cols="
            << core::to_string(op.col_stream()) << " (built in " << build_ms
            << " ms)\n";
  if (which == "power") {
    // Eigen mode: xs doubles as the (non-zero) start vector; no rhs.
    x = xs;
    Stopwatch sw;
    const auto rep = solver::power_iteration(op, x, opt.tolerance,
                                             opt.max_iterations, threads);
    const double s = sw.elapsed_seconds();
    std::cout << (rep.converged ? "converged" : "NOT converged") << " in "
              << rep.iterations << " iterations, " << s * 1e3 << " ms ("
              << static_cast<double>(rep.iterations) / s
              << " iters/s)\ndominant eigenvalue: " << rep.eigenvalue << "\n";
  } else {
    std::vector<real_t> b(n);
    op.apply(xs, b);
    solver::SolveReport rep;
    Stopwatch sw;
    if (which == "cg") {
      rep = solver::cg(op, b, x, opt);
    } else if (which == "bicgstab") {
      rep = solver::bicgstab(op, b, x, opt);
    } else {
      require(false, "solve: unknown --solver value: " + which);
    }
    const double s = sw.elapsed_seconds();
    double err = 0, ref = 0;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
      finite = finite && std::isfinite(x[i]);
      err = std::max(err, std::abs(x[i] - xs[i]));
      ref = std::max(ref, std::abs(xs[i]));
    }
    std::cout << (rep.converged ? "converged" : "NOT converged") << " in "
              << rep.iterations << " iterations, " << s * 1e3 << " ms ("
              << static_cast<double>(rep.iterations) / s
              << " iters/s)\nrelative residual: " << rep.relative_residual
              << ", max error vs known x*: ";
    if (finite) {
      std::cout << (ref > 0 ? err / ref : err) << "\n";
    } else {
      std::cout << "non-finite (solver diverged; cg needs an SPD matrix)\n";
    }
  }
  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    f.precision(17);
    for (real_t v : x) f << v << "\n";
    std::cout << "wrote x to " << args.get("out") << "\n";
  }
  return 0;
}

int cmd_codegen(const Args& args) {
  const auto A = load_input(args);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();
  const std::string dir = args.get("out-dir", ".");
  const auto r = tune::tune(A, dev);
  const bool cuda = args.has("cuda");
  const auto kernels =
      cuda ? codegen::generate_cuda(r.best.format, r.best.exec, dev)
           : codegen::generate_opencl(r.best.format, r.best.exec, dev);
  std::cout << "tuned: " << r.best.format.to_string() << " | "
            << r.best.exec.to_string() << "\n"
            << "cache key: "
            << codegen::cache_key(r.best.format, r.best.exec) << "\n";
  for (const auto& k : kernels) {
    const std::string path = dir + "/" + k.name + (cuda ? ".cu" : ".cl");
    std::ofstream f(path);
    require(static_cast<bool>(f), "codegen: cannot open " + path);
    f << k.source;
    std::cout << "wrote " << path << " (" << k.source.size() << " bytes)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "spmv") return cmd_spmv(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "codegen") return cmd_codegen(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
