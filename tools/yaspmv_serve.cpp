// yaspmv-serve — the SpMV serving daemon.
//
//   yaspmv-serve --socket=/tmp/yaspmv.sock [--plan-cache=DIR]
//                [--journal-dir=DIR] [--device=gtx680|gtx480]
//                [--executors=N] [--queue-capacity=N] [--max-inflight=N]
//                [--drain-timeout-ms=N] [--verify [--sample-rows=N]]
//                [--tune-workers=N] [--no-tune] [--enable-inject]
//
// Runs until SIGTERM/SIGINT (or a client kShutdown request), then drains
// gracefully: admissions stop, queued work finishes under the drain
// watchdog, leftover requests are answered kShuttingDown, and the process
// exits 0.  Tuned plans persist in the plan cache, so a restarted daemon
// re-registers known matrices without re-tuning.
#include <csignal>
#include <iostream>

#include "yaspmv/serve/server.hpp"
#include "yaspmv/util/args.hpp"

namespace {

yaspmv::serve::Server* g_server = nullptr;

// Only the async-signal-safe request_stop() (an atomic store) runs here;
// the main thread blocked in wait() performs the actual drain.
void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int usage() {
  std::cerr
      << "usage: yaspmv-serve --socket=<path> [options]\n"
         "  --socket=<path>        Unix-domain socket to bind (required)\n"
         "  --plan-cache=<dir>     durable plan cache (default: "
         "~/.cache/yaspmv/plans)\n"
         "  --journal-dir=<dir>    dump a flight-recorder journal per failed "
         "attempt\n"
         "  --device=gtx680|gtx480 tuning target (default gtx680)\n"
         "  --executors=N          executor threads (0 = auto)\n"
         "  --queue-capacity=N     bounded per-matrix queue (default 64)\n"
         "  --max-inflight=N       global queued+running cap (0 = auto)\n"
         "  --drain-timeout-ms=N   graceful-drain watchdog (default 5000)\n"
         "  --verify               sampled-row residual check per apply\n"
         "  --sample-rows=N        rows sampled by --verify (default 16)\n"
         "  --verified             checksum-verify every request (ABFT; "
         "clients can also opt in per request)\n"
         "  --max-frame-bytes=N    reject frames above N payload bytes "
         "before allocating (0 = protocol max)\n"
         "  --tune-workers=N       tuner concurrency on a plan-cache miss\n"
         "  --apply-threads=N      native threads per apply (default 1:\n"
         "                         parallelism comes from concurrent "
         "executors)\n"
         "  --no-tune              skip tuning; serve the default config\n"
         "  --enable-inject        honor per-request fault-injection hooks\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  serve::ServerOptions opt;
  opt.socket_path = args.get("socket");
  if (opt.socket_path.empty()) return usage();
  opt.plan_cache_dir = args.get("plan-cache");
  opt.journal_dir = args.get("journal-dir");
  opt.device = args.get("device", "gtx680");
  opt.executors = static_cast<unsigned>(args.get_int("executors", 0));
  opt.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  opt.max_inflight = static_cast<std::size_t>(args.get_int("max-inflight", 0));
  opt.drain_timeout_ms =
      static_cast<int>(args.get_int("drain-timeout-ms", 5000));
  opt.verify = args.has("verify");
  opt.verify_sample_rows = static_cast<int>(args.get_int("sample-rows", 16));
  opt.verified = args.has("verified");
  opt.max_frame_bytes =
      static_cast<std::uint64_t>(args.get_int("max-frame-bytes", 0));
  opt.tune_workers = static_cast<unsigned>(args.get_int("tune-workers", 0));
  opt.apply_threads = static_cast<unsigned>(args.get_int("apply-threads", 1));
  opt.tune_on_register = !args.has("no-tune");
  opt.enable_inject = args.has("enable-inject");

  try {
    serve::Server server(opt);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    std::cout << "yaspmv-serve: listening on " << opt.socket_path
              << " (plan cache: " << server.plan_cache().dir() << ", "
              << server.options().executors << " executors, max inflight "
              << server.options().max_inflight << ")" << std::endl;
    server.wait();
    const auto s = server.stats();
    std::cout << "yaspmv-serve: drained (" << s.completed << " completed, "
              << s.overloaded << " overloaded, " << s.faulted << " faulted, "
              << s.shed_on_drain << " shed on drain)" << std::endl;
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::cerr << "yaspmv-serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
